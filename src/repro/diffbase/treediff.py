"""A keyless top-down tree diff — the XML-Diff stand-in (Sec. 5).

The paper tried IBM's XML-Diff as a tree-structured delta encoder and
found it "incurred a significantly higher space overhead" than line
diff, settling on line diff for the evaluation.  This module provides
an equivalent baseline: a top-down structural diff in the spirit of
[Cobena et al. 2001] — children are aligned by a Myers run over
content fingerprints (so identical subtrees match for free), unmatched
same-tag elements recurse, and everything else is recorded whole.

The delta is a *patch tree*, itself an XML document, applied by a
single lock-step walk over the old document:

* ``<c n="k"/>``   — copy the next ``k`` old children;
* ``<s n="k"/>``   — skip (delete) the next ``k`` old children;
* ``<i>...</i>``   — insert the contained subtrees / text;
* ``<p>...</p>``   — recurse: patch the next old child with the
  contained operation sequence;
* ``<t>new</t>``   — replace the next old child (a text node);
* ``<r>...</r>``   — replace the whole document (root changed).

It round-trips: :func:`apply_tree_delta` reconstructs the new version
exactly.
"""

from __future__ import annotations

import hashlib

from ..xmltree.canonical import canonical_form
from ..xmltree.model import Element, Text
from ..xmltree.serializer import serialized_size
from .myers import diff_lines


class TreeDiffError(ValueError):
    """Raised when a delta cannot be applied."""


def _signature(node) -> str:
    if isinstance(node, Text):
        return "#text:" + hashlib.sha256(node.text.encode("utf-8")).hexdigest()[:16]
    digest = hashlib.sha256(canonical_form(node).encode("utf-8")).hexdigest()[:16]
    return f"{node.tag}:{digest}"


def _shallow(node) -> str:
    if isinstance(node, Text):
        return "#text"
    return node.tag


def _attrs(node: Element) -> tuple:
    return tuple(sorted((a.name, a.value) for a in node.attributes))


def tree_diff(old: Element, new: Element) -> Element:
    """Compute a patch-tree delta transforming ``old`` into ``new``."""
    delta = Element("tree-delta")
    if old.tag != new.tag or _attrs(old) != _attrs(new):
        replacement = delta.append(Element("r"))
        replacement.append(new.copy())
        return delta
    _emit_patch_ops(old, new, delta)
    return delta


def _emit_copy(target: Element, count: int) -> None:
    if count <= 0:
        return
    last = target.children[-1] if target.children else None
    if isinstance(last, Element) and last.tag == "c":
        last.set_attribute("n", str(int(last.get_attribute("n")) + count))
        return
    op = target.append(Element("c"))
    op.set_attribute("n", str(count))


def _emit_skip(target: Element, count: int) -> None:
    if count <= 0:
        return
    last = target.children[-1] if target.children else None
    if isinstance(last, Element) and last.tag == "s":
        last.set_attribute("n", str(int(last.get_attribute("n")) + count))
        return
    op = target.append(Element("s"))
    op.set_attribute("n", str(count))


def _emit_insert(target: Element, nodes) -> None:
    op = target.append(Element("i"))
    for node in nodes:
        copied = node.copy()
        copied.parent = op
        op.children.append(copied)  # positional: keep text nodes distinct


def _emit_patch_ops(old: Element, new: Element, target: Element) -> None:
    """Emit the operation sequence aligning old's children to new's."""
    old_children = old.children
    new_children = new.children
    deep_old = [_signature(c) for c in old_children]
    deep_new = [_signature(c) for c in new_children]
    ops = diff_lines(deep_old, deep_new)
    index = 0
    while index < len(ops):
        op = ops[index]
        if op.kind == "equal":
            _emit_copy(target, op.a_end - op.a_start)
            index += 1
            continue
        if (
            op.kind == "delete"
            and index + 1 < len(ops)
            and ops[index + 1].kind == "insert"
        ):
            insert = ops[index + 1]
            _align_unmatched(
                old_children[op.a_start : op.a_end],
                new_children[insert.b_start : insert.b_end],
                target,
            )
            index += 2
            continue
        if op.kind == "delete":
            _emit_skip(target, op.a_end - op.a_start)
        else:
            _emit_insert(target, new_children[op.b_start : op.b_end])
        index += 1


def _align_unmatched(old_run, new_run, target: Element) -> None:
    """Second-chance alignment of changed runs by tag, recursing into
    same-tag element pairs so small deep changes yield small deltas."""
    shallow_old = [_shallow(c) for c in old_run]
    shallow_new = [_shallow(c) for c in new_run]
    for op in diff_lines(shallow_old, shallow_new):
        if op.kind == "equal":
            for pair in range(op.a_end - op.a_start):
                old_child = old_run[op.a_start + pair]
                new_child = new_run[op.b_start + pair]
                if isinstance(old_child, Text):
                    text_op = target.append(Element("t"))
                    text_op.append(Text(new_child.text))
                elif _attrs(old_child) != _attrs(new_child):
                    _emit_skip(target, 1)
                    _emit_insert(target, [new_child])
                else:
                    patch = target.append(Element("p"))
                    _emit_patch_ops(old_child, new_child, patch)
        elif op.kind == "delete":
            _emit_skip(target, op.a_end - op.a_start)
        else:
            _emit_insert(target, new_run[op.b_start : op.b_end])


def apply_tree_delta(old: Element, delta: Element) -> Element:
    """Apply a patch-tree delta to reconstruct the new document."""
    ops = delta.children
    if len(ops) == 1 and isinstance(ops[0], Element) and ops[0].tag == "r":
        (replacement,) = ops[0].element_children()
        return replacement.copy()
    return _apply_ops(old, ops)


def _apply_ops(old: Element, ops) -> Element:
    result = Element(old.tag)
    for attr in old.attributes:
        result.set_attribute(attr.name, attr.value)
    cursor = 0
    for op in ops:
        if not isinstance(op, Element):
            continue
        if op.tag == "c":
            count = int(op.get_attribute("n") or "0")
            for child in old.children[cursor : cursor + count]:
                _splice(result, child.copy())
            cursor += count
        elif op.tag == "s":
            cursor += int(op.get_attribute("n") or "0")
        elif op.tag == "i":
            for child in op.children:
                _splice(result, child.copy())
        elif op.tag == "p":
            old_child = old.children[cursor]
            if not isinstance(old_child, Element):
                raise TreeDiffError("Patch op targets a text node")
            _splice(result, _apply_ops(old_child, op.children))
            cursor += 1
        elif op.tag == "t":
            _splice(result, Text(op.text_content()))
            cursor += 1
        else:
            raise TreeDiffError(f"Unknown delta op <{op.tag}>")
    if cursor > len(old.children):
        raise TreeDiffError("Delta consumed more children than exist")
    return result


def _splice(parent: Element, child) -> None:
    """Positional append that never coalesces adjacent text nodes —
    delta application must preserve exact child counts."""
    child.parent = parent
    parent.children.append(child)


def tree_delta_size(old: Element, new: Element) -> int:
    """Serialized size of the tree delta (the storage-cost metric)."""
    return serialized_size(tree_diff(old, new))
