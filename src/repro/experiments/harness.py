"""The storage-experiment harness (Sec. 5).

Feeds one version sequence simultaneously to every storage strategy the
paper plots and records cumulative byte sizes after each version:

* ``version`` — the size of version *i* itself;
* ``archive`` — our key-based merged archive (Fig. 11-14 ``archive``);
* ``incremental`` — V1 + incremental diffs (``V1+inc diffs``);
* ``cumulative`` — V1 + cumulative diffs (``V1+cumu diffs``);
* ``gzip_incremental`` / ``gzip_cumulative`` — the diff repositories
  with every piece gzipped;
* ``xmill_archive`` — the archive XML under the XMill-style compressor;
* ``xmill_concat`` — all versions side by side, XMill-compressed.

These are exactly the lines of the paper's Figures 11-14 and Appendix C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..compress.gzipper import gzip_pieces_size
from ..compress.xmill import compress as xmill_compress
from ..compress.xmill import to_bytes as xmill_to_bytes
from ..core.archive import Archive, ArchiveOptions
from ..diffbase.repository import (
    CumulativeDiffRepository,
    FullCopyRepository,
    IncrementalDiffRepository,
)
from ..keys.spec import KeySpec
from ..xmltree.model import Element
from ..xmltree.parser import parse_document
from ..xmltree.serializer import serialized_size


@dataclass
class StorageSeries:
    """Per-version byte sizes for every strategy."""

    name: str
    versions: list[int] = field(default_factory=list)
    version_bytes: list[int] = field(default_factory=list)
    archive_bytes: list[int] = field(default_factory=list)
    incremental_bytes: list[int] = field(default_factory=list)
    cumulative_bytes: list[int] = field(default_factory=list)
    gzip_incremental_bytes: list[int] = field(default_factory=list)
    gzip_cumulative_bytes: list[int] = field(default_factory=list)
    xmill_archive_bytes: list[int] = field(default_factory=list)
    xmill_concat_bytes: list[int] = field(default_factory=list)

    LINE_LABELS = {
        "version_bytes": "version",
        "archive_bytes": "archive",
        "incremental_bytes": "V1+inc diffs",
        "cumulative_bytes": "V1+cumu diffs",
        "gzip_incremental_bytes": "gzip(V1+inc diffs)",
        "gzip_cumulative_bytes": "gzip(V1+cumu diffs)",
        "xmill_archive_bytes": "xmill(archive)",
        "xmill_concat_bytes": "xmill(V1+...+Vi)",
    }

    def lines(self) -> dict[str, list[int]]:
        """Label → data series, only for populated lines."""
        output: dict[str, list[int]] = {}
        for attribute, label in self.LINE_LABELS.items():
            data = getattr(self, attribute)
            if data:
                output[label] = data
        return output

    def final(self, attribute: str) -> int:
        data = getattr(self, attribute)
        if not data:
            raise ValueError(f"Series {attribute} was not recorded")
        return data[-1]

    def overhead_vs_incremental(self) -> float:
        """Max of archive/incremental over the run — the paper's
        "never more than X%" headline metric."""
        ratios = [
            archive / incremental
            for archive, incremental in zip(
                self.archive_bytes, self.incremental_bytes
            )
            if incremental
        ]
        return max(ratios) if ratios else float("nan")


def run_storage_experiment(
    name: str,
    versions: list[Element],
    spec: KeySpec,
    with_compression: bool = True,
    with_cumulative: bool = True,
    options: Optional[ArchiveOptions] = None,
) -> StorageSeries:
    """Run every strategy over the version sequence and record sizes."""
    series = StorageSeries(name=name)
    archive = Archive(spec, options)
    incremental = IncrementalDiffRepository()
    cumulative = CumulativeDiffRepository() if with_cumulative else None
    full = FullCopyRepository()

    for number, version in enumerate(versions, start=1):
        archive.add_version(version.copy())
        incremental.add_version(version)
        if cumulative is not None:
            cumulative.add_version(version)
        full.add_version(version)

        series.versions.append(number)
        series.version_bytes.append(serialized_size(version))
        archive_text = archive.to_xml_string()
        series.archive_bytes.append(len(archive_text.encode("utf-8")))
        series.incremental_bytes.append(incremental.total_bytes())
        if cumulative is not None:
            series.cumulative_bytes.append(cumulative.total_bytes())

        if with_compression:
            series.gzip_incremental_bytes.append(
                gzip_pieces_size(incremental.pieces())
            )
            if cumulative is not None:
                series.gzip_cumulative_bytes.append(
                    gzip_pieces_size(cumulative.pieces())
                )
            # Storage-grade container bytes (magic + framing + container
            # paths included) — the honest at-rest size the codec layer
            # writes, not the idealized section sum.
            series.xmill_archive_bytes.append(
                len(xmill_to_bytes(xmill_compress(parse_document(archive_text))))
            )
            concat = Element("versions")
            for piece in full.pieces():
                if piece.strip():
                    concat.append(parse_document(piece))
            series.xmill_concat_bytes.append(
                len(xmill_to_bytes(xmill_compress(concat)))
            )
    return series


@dataclass
class DatasetStatistics:
    """One row of the paper's Fig. 7 table."""

    name: str
    size_bytes: int
    node_count: int
    height: int


def dataset_statistics(name: str, document: Element) -> DatasetStatistics:
    """Size, node count N and height h of a document (Fig. 7)."""
    return DatasetStatistics(
        name=name,
        size_bytes=serialized_size(document),
        node_count=document.node_count(),
        height=document.height(),
    )
