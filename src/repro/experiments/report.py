"""Plain-text rendering of reproduced figures.

Prints the same rows/series the paper's figures plot, as aligned
tables, for the benchmark harness and EXPERIMENTS.md.
"""

from __future__ import annotations

from .figures import FigureResult
from .harness import DatasetStatistics, StorageSeries


def format_bytes(count: int) -> str:
    if count >= 10_000_000:
        return f"{count / 1_000_000:.1f}M"
    if count >= 10_000:
        return f"{count / 1_000:.1f}K"
    return str(count)


def render_series(series: StorageSeries) -> str:
    """One aligned table: version index → bytes per strategy."""
    lines = series.lines()
    labels = list(lines)
    header = ["ver"] + labels
    rows = []
    for index, version in enumerate(series.versions):
        rows.append(
            [str(version)] + [format_bytes(lines[label][index]) for label in labels]
        )
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        for col in range(len(header))
    ]
    parts = [f"# {series.name}"]
    parts.append("  ".join(header[col].rjust(widths[col]) for col in range(len(header))))
    for row in rows:
        parts.append("  ".join(row[col].rjust(widths[col]) for col in range(len(header))))
    return "\n".join(parts)


def render_figure(result: FigureResult) -> str:
    parts = [f"== Figure {result.figure}: {result.title} =="]
    for series in result.series:
        parts.append(render_series(series))
    if result.claims:
        parts.append("-- shape claims --")
        for claim in result.claims:
            status = "PASS" if claim.holds else "FAIL"
            parts.append(f"[{status}] {claim.description}")
    if result.notes:
        parts.append(f"note: {result.notes}")
    return "\n".join(parts)


def render_statistics(rows: list[DatasetStatistics]) -> str:
    parts = ["== Figure 7: dataset statistics =="]
    header = f"{'Data':<12} {'Size':>10} {'No. of Nodes(N)':>16} {'Height(h)':>10}"
    parts.append(header)
    for row in rows:
        parts.append(
            f"{row.name:<12} {format_bytes(row.size_bytes):>10} "
            f"{row.node_count:>16} {row.height:>10}"
        )
    return "\n".join(parts)
