"""Experiment harness and per-figure drivers (Sec. 5, Appendix C)."""

from .figures import (
    Claim,
    FigureResult,
    appendix_c1,
    appendix_c2,
    figure7_statistics,
    figure11_omim,
    figure11_swissprot,
    figure12_omim,
    figure12_swissprot,
    figure13_xmark,
    figure14_worstcase,
    headline_claims,
    omim_versions,
    swissprot_versions,
    xmark_random_versions,
    xmark_worst_case_versions,
)
from .harness import (
    DatasetStatistics,
    StorageSeries,
    dataset_statistics,
    run_storage_experiment,
)
from .report import render_figure, render_series, render_statistics

__all__ = [
    "Claim",
    "DatasetStatistics",
    "FigureResult",
    "StorageSeries",
    "appendix_c1",
    "appendix_c2",
    "dataset_statistics",
    "figure7_statistics",
    "figure11_omim",
    "figure11_swissprot",
    "figure12_omim",
    "figure12_swissprot",
    "figure13_xmark",
    "figure14_worstcase",
    "headline_claims",
    "omim_versions",
    "render_figure",
    "render_series",
    "render_statistics",
    "run_storage_experiment",
    "swissprot_versions",
    "xmark_random_versions",
    "xmark_worst_case_versions",
]
