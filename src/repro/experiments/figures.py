"""One driver per figure/table in the paper's evaluation (Sec. 5, App. C).

Each function generates the figure's workload (laptop-scaled; see
DESIGN.md's substitution notes), runs the storage harness, and returns a
:class:`FigureResult` carrying the data series plus the *shape claims*
the paper makes about that figure — who wins, by what rough factor,
where the crossovers fall.  The benchmark suite asserts those claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.omim import OmimGenerator, omim_key_spec
from ..data.swissprot import SwissProtGenerator, swissprot_key_spec
from ..data.xmark import XMarkGenerator, xmark_key_spec
from .harness import (
    DatasetStatistics,
    StorageSeries,
    dataset_statistics,
    run_storage_experiment,
)


@dataclass
class Claim:
    """One checkable statement the paper makes about a figure."""

    description: str
    holds: bool


@dataclass
class FigureResult:
    """A reproduced figure: its series plus the verified claims."""

    figure: str
    title: str
    series: list[StorageSeries]
    claims: list[Claim] = field(default_factory=list)
    notes: str = ""

    def all_claims_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)


# -- workload builders (shared by figures and benchmarks) ---------------------


def omim_versions(version_count: int = 24, initial_records: int = 60, seed: int = 7):
    """Scaled-down OMIM sequence (paper: 100 versions over ~100 days)."""
    generator = OmimGenerator(seed=seed, initial_records=initial_records)
    return generator.generate_versions(version_count)


def swissprot_versions(version_count: int = 10, initial_records: int = 14, seed: int = 5):
    """Scaled-down Swiss-Prot sequence (paper: 20 versions over ~5 years)."""
    generator = SwissProtGenerator(seed=seed, initial_records=initial_records)
    return generator.generate_versions(version_count)


def xmark_random_versions(
    percent: float, version_count: int = 12, seed: int = 3,
    items: int = 60, people: int = 30, auctions: int = 20,
):
    generator = XMarkGenerator(seed=seed, items=items, people=people, auctions=auctions)
    return generator.versions_random(version_count, percent)


def xmark_worst_case_versions(
    percent: float, version_count: int = 12, seed: int = 3,
    items: int = 60, people: int = 30, auctions: int = 20,
):
    generator = XMarkGenerator(seed=seed, items=items, people=people, auctions=auctions)
    return generator.versions_worst_case(version_count, percent)


# -- Fig. 7: dataset statistics -------------------------------------------------


def figure7_statistics(scale: float = 1.0) -> list[DatasetStatistics]:
    """Fig. 7: size, node count and height of the largest version."""
    omim = omim_versions(max(2, int(8 * scale)))[-1]
    swissprot = swissprot_versions(max(2, int(6 * scale)))[-1]
    xmark = XMarkGenerator(seed=1).initial_version()
    return [
        dataset_statistics("OMIM", omim),
        dataset_statistics("Swiss-Prot", swissprot),
        dataset_statistics("XMark", xmark),
    ]


# -- Fig. 11: versus cumulative diffs ----------------------------------------------


def _claim_cumulative_blowup(series: StorageSeries) -> list[Claim]:
    claims = []
    midpoint = len(series.versions) // 2
    claims.append(
        Claim(
            description=(
                f"{series.name}: cumulative repo exceeds 2x the archive "
                f"within ~10 versions (Sec. 5.2)"
            ),
            holds=series.cumulative_bytes[-1] > 2 * series.archive_bytes[-1],
        )
    )
    early = series.cumulative_bytes[midpoint] / max(1, series.archive_bytes[midpoint])
    late = series.cumulative_bytes[-1] / max(1, series.archive_bytes[-1])
    claims.append(
        Claim(
            description=(
                f"{series.name}: cumulative/archive ratio grows with the "
                f"version count ({early:.2f} -> {late:.2f})"
            ),
            holds=late > early,
        )
    )
    return claims


def figure11_omim(version_count: int = 24) -> FigureResult:
    """Fig. 11(a): OMIM — version/archive/incremental/cumulative sizes."""
    series = run_storage_experiment(
        "OMIM", omim_versions(version_count), omim_key_spec(), with_compression=False
    )
    return FigureResult(
        figure="11a",
        title="OMIM storage vs cumulative diffs",
        series=[series],
        claims=_claim_cumulative_blowup(series),
    )


def figure11_swissprot(version_count: int = 10) -> FigureResult:
    """Fig. 11(b): Swiss-Prot — same four lines."""
    series = run_storage_experiment(
        "Swiss-Prot",
        swissprot_versions(version_count),
        swissprot_key_spec(),
        with_compression=False,
    )
    return FigureResult(
        figure="11b",
        title="Swiss-Prot storage vs cumulative diffs",
        series=[series],
        claims=_claim_cumulative_blowup(series),
    )


# -- Fig. 12: versus incremental diffs, with compression ------------------------------


def _claim_compression(series: StorageSeries, overhead_limit: float) -> list[Claim]:
    claims = [
        Claim(
            description=(
                f"{series.name}: archive stays within "
                f"{(overhead_limit - 1) * 100:.0f}% of the incremental-diff "
                f"repository (max ratio "
                f"{series.overhead_vs_incremental():.3f})"
            ),
            holds=series.overhead_vs_incremental() <= overhead_limit,
        ),
        Claim(
            description=(
                f"{series.name}: xmill(archive) beats gzip(inc diffs) "
                f"({series.final('xmill_archive_bytes')} vs "
                f"{series.final('gzip_incremental_bytes')})"
            ),
            holds=series.final("xmill_archive_bytes")
            < series.final("gzip_incremental_bytes"),
        ),
        Claim(
            description=(
                f"{series.name}: xmill(archive) beats gzip(cumu diffs)"
            ),
            holds=series.final("xmill_archive_bytes")
            < series.final("gzip_cumulative_bytes"),
        ),
        Claim(
            description=(
                f"{series.name}: xmill(archive) beats xmill(V1+...+Vi)"
            ),
            holds=series.final("xmill_archive_bytes")
            < series.final("xmill_concat_bytes"),
        ),
    ]
    return claims


def figure12_omim(version_count: int = 24) -> FigureResult:
    """Fig. 12(a): OMIM with compression; archive within 1% of inc diffs."""
    series = run_storage_experiment(
        "OMIM", omim_versions(version_count), omim_key_spec()
    )
    return FigureResult(
        figure="12a",
        title="OMIM storage with compression",
        series=[series],
        claims=_claim_compression(series, overhead_limit=1.01),
    )


def figure12_swissprot(version_count: int = 10) -> FigureResult:
    """Fig. 12(b): Swiss-Prot with compression; archive within 8%."""
    series = run_storage_experiment(
        "Swiss-Prot", swissprot_versions(version_count), swissprot_key_spec()
    )
    return FigureResult(
        figure="12b",
        title="Swiss-Prot storage with compression",
        series=[series],
        claims=_claim_compression(series, overhead_limit=1.08),
    )


# -- Fig. 13 and App. C.1: XMark under random change ratios ------------------------------


def figure13_xmark(percent: float, version_count: int = 12) -> FigureResult:
    """Fig. 13 ((a): 1.66%, (b): 10%) — also App. C.1 at 3.33%/6.66%.

    Shape claims: at low ratios the diff repo wins marginally; at high
    ratios the archive becomes competitive (Sec. 5.3); xmill(archive)
    wins overall.
    """
    series = run_storage_experiment(
        f"XMark({percent:.2f}%)",
        xmark_random_versions(percent, version_count),
        xmark_key_spec(),
    )
    claims = [
        Claim(
            description=(
                f"{series.name}: archive within 35% of incremental diffs "
                f"(max ratio {series.overhead_vs_incremental():.3f})"
            ),
            holds=series.overhead_vs_incremental() <= 1.35,
        ),
        Claim(
            description=f"{series.name}: xmill(archive) beats gzip(inc diffs)",
            holds=series.final("xmill_archive_bytes")
            < series.final("gzip_incremental_bytes"),
        ),
        Claim(
            description=f"{series.name}: xmill(archive) beats xmill(V1+...+Vi)",
            holds=series.final("xmill_archive_bytes")
            < series.final("xmill_concat_bytes"),
        ),
    ]
    return FigureResult(
        figure="13" if percent in (1.66, 10.0) else "C.1",
        title=f"XMark storage at {percent}% change ratio",
        series=[series],
        claims=claims,
    )


def appendix_c1(version_count: int = 12) -> list[FigureResult]:
    """App. C.1: the intermediate change ratios 3.33% and 6.66%."""
    return [
        figure13_xmark(3.33, version_count),
        figure13_xmark(6.66, version_count),
    ]


# -- Fig. 14 and App. C.2: the worst case (key mutation) -----------------------------------


def figure14_worstcase(percent: float, version_count: int = 12) -> FigureResult:
    """Fig. 14 ((a): 1.66%, (b): 10%) — also App. C.2 at 3.33%/6.66%.

    Shape claims: the archive grows much faster than the diff repo
    (keys force similar elements to be stored separately), yet
    xmill(archive) still beats gzip(inc diffs) in the early regime
    (Sec. 5.4: "up to the points where our archive gets about 1.2 times
    larger than the incremental diff repository").
    """
    series = run_storage_experiment(
        f"XMark-worst({percent:.2f}%)",
        xmark_worst_case_versions(percent, version_count),
        xmark_key_spec(),
    )
    final_ratio = series.final("archive_bytes") / series.final("incremental_bytes")
    # Find the crossover version where xmill(archive) stops winning.
    crossover = None
    for index, version in enumerate(series.versions):
        if (
            series.xmill_archive_bytes[index]
            >= series.gzip_incremental_bytes[index]
        ):
            crossover = version
            break
    claims = [
        Claim(
            description=(
                f"{series.name}: worst case hurts — archive grows to "
                f"{final_ratio:.2f}x the incremental repo (>1.1x expected)"
            ),
            holds=final_ratio > 1.1,
        ),
        Claim(
            description=(
                f"{series.name}: diff repo stays near one version's size "
                f"(final repo < 2x final version)"
            ),
            holds=series.final("incremental_bytes")
            < 2 * series.final("version_bytes"),
        ),
        Claim(
            description=(
                f"{series.name}: compressed archive wins while the archive "
                f"is within ~1.05x of the inc repo (paper: up to ~1.2x)"
            ),
            holds=all(
                series.xmill_archive_bytes[i] < series.gzip_incremental_bytes[i]
                for i in range(len(series.versions))
                if series.archive_bytes[i] <= 1.05 * series.incremental_bytes[i]
            ),
        ),
    ]
    notes = (
        f"xmill(archive) crossover at version {crossover}"
        if crossover is not None
        else "xmill(archive) never crossed gzip(inc diffs) in this run"
    )
    return FigureResult(
        figure="14" if percent in (1.66, 10.0) else "C.2",
        title=f"XMark worst case at {percent}% key mutation",
        series=[series],
        claims=claims,
        notes=notes,
    )


def appendix_c2(version_count: int = 12) -> list[FigureResult]:
    """App. C.2: worst case at 3.33% and 6.66%."""
    return [
        figure14_worstcase(3.33, version_count),
        figure14_worstcase(6.66, version_count),
    ]


# -- Headline claims (Sec. 5.1, 9) -------------------------------------------------------


def headline_claims(
    omim_count: int = 24, swissprot_count: int = 10
) -> list[Claim]:
    """The summary claims of Sec. 5.1/9, computed from fresh runs."""
    omim = figure12_omim(omim_count)
    swissprot = figure12_swissprot(swissprot_count)
    fig11 = figure11_omim(omim_count)
    claims = list(omim.claims) + list(swissprot.claims) + list(fig11.claims)
    return claims
