"""Key-aware document normalization.

The archive "ignores the order among elements with keys" (Sec. 2), so a
retrieved version can differ from the original only by keyed-sibling
order.  :func:`normalize_document` sorts keyed siblings by their key
labels and renders a canonical string; two documents represent the same
database state under a key spec exactly when their normal forms match.
The test suite's round-trip fidelity checks rest on this.
"""

from __future__ import annotations

from ..keys.annotate import AnnotatedDocument, annotate_keys
from ..keys.spec import KeySpec
from ..xmltree.canonical import canonical_form
from ..xmltree.model import Element
from ..xmltree.serializer import escape_attribute


def normalize_document(root: Element, spec: KeySpec) -> str:
    """Canonical string of a document modulo keyed-sibling order."""
    annotated = annotate_keys(root, spec)
    parts: list[str] = []
    _write(annotated, root, parts)
    return "".join(parts)


def documents_equivalent(a: Element, b: Element, spec: KeySpec) -> bool:
    """``True`` when the documents are equal up to keyed-sibling order."""
    return normalize_document(a, spec) == normalize_document(b, spec)


def _write(document: AnnotatedDocument, node: Element, parts: list[str]) -> None:
    attrs = sorted(node.attributes, key=lambda attr: attr.name)
    attr_text = "".join(
        f' {attr.name}="{escape_attribute(attr.value)}"' for attr in attrs
    )
    parts.append(f"<{node.tag}{attr_text}>")
    if document.is_frontier(node):
        # Beyond the frontier order is significant: plain canonical form.
        for child in node.children:
            parts.append(canonical_form(child))
    else:
        ordered = sorted(
            node.element_children(),
            key=lambda child: document.label(child).sort_token(),  # type: ignore[union-attr]
        )
        for child in ordered:
            _write(document, child, parts)
    parts.append(f"</{node.tag}>")
