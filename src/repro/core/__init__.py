"""The paper's primary contribution: the key-based merging archiver.

Interval timestamps (Sec. 2), Nested Merge (Sec. 4.2), fingerprints
(Sec. 4.3), further compaction (Example 4.3), the XML archive
representation (Fig. 5), version retrieval and element history (Sec. 7).
"""

from .archive import (
    Archive,
    ArchiveError,
    ArchiveOptions,
    ArchiveStats,
    ElementHistory,
    ROOT_TAG,
    STORAGE_ALTERNATIVES,
    STORAGE_ATTR,
    STORAGE_WEAVE,
    T_ATTR,
    T_TAG,
)
from .canonicalize import documents_equivalent, normalize_document
from .fingerprint import Fingerprinter
from .ingest import IngestSession
from .merge import (
    AttributeChangeError,
    MergeMemo,
    MergeOptions,
    MergeStats,
    build_archive_subtree,
    nested_merge,
)
from .nodes import Alternative, ArchiveNode, Weave, WeaveSegment
from .tempquery import (
    Change,
    ChangeReport,
    archive_diff,
    first_appearance,
    keyed_diff,
    last_change,
)
from .respec import checkpoint_archive, rearchive
from .tstree import (
    ProbeCount,
    TimestampTreeNode,
    build_timestamp_tree,
    patch_timestamp_tree,
    search_timestamp_tree,
)
from .versionset import VersionSet

__all__ = [
    "Alternative",
    "Archive",
    "ArchiveError",
    "ArchiveNode",
    "ArchiveOptions",
    "ArchiveStats",
    "AttributeChangeError",
    "ElementHistory",
    "Fingerprinter",
    "IngestSession",
    "MergeMemo",
    "MergeOptions",
    "MergeStats",
    "ROOT_TAG",
    "STORAGE_ALTERNATIVES",
    "STORAGE_ATTR",
    "STORAGE_WEAVE",
    "T_ATTR",
    "T_TAG",
    "VersionSet",
    "Change",
    "ChangeReport",
    "archive_diff",
    "first_appearance",
    "keyed_diff",
    "last_change",
    "Weave",
    "WeaveSegment",
    "ProbeCount",
    "TimestampTreeNode",
    "build_archive_subtree",
    "build_timestamp_tree",
    "documents_equivalent",
    "nested_merge",
    "patch_timestamp_tree",
    "search_timestamp_tree",
    "rearchive",
    "checkpoint_archive",
    "normalize_document",
]
