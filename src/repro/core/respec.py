"""Re-archiving under a changed key structure (Sec. 9, open issues).

"Our archiving technique requires that all versions of the database
must conform to the same key structure.  Since schemas tend to change
slightly over time, a natural question is how this technique can be
extended to archive data under circumstances where the key structure
may also change."

The sound general answer — and the one implemented here — is
*re-archiving*: replay every stored version out of the old archive and
merge it into a fresh archive under the new key specification.  Element
identity is re-derived from the new keys, so continuity is preserved
wherever the new keys agree with the old ones, and re-split where they
do not.  Cost is one retrieval plus one merge per version (the archive
makes both cheap), and the operation doubles as the paper's other
Sec. 9 proposal, archive *checkpointing*: ``rearchive`` with the same
spec but ``since`` set drops history before a cut-off.
"""

from __future__ import annotations

from typing import Optional

from ..keys.spec import KeySpec
from .archive import Archive, ArchiveOptions


def rearchive(
    archive: Archive,
    new_spec: KeySpec,
    options: Optional[ArchiveOptions] = None,
    since: int = 1,
) -> Archive:
    """Rebuild ``archive`` under ``new_spec``.

    Every version from ``since`` through the latest is retrieved from
    the old archive and merged into the new one, renumbered starting at
    1.  Versions the old archive recorded as empty stay empty.  Raises
    if any stored version violates the new key specification — the
    caller learns *which* version blocks the migration.
    """
    if since < 1 or (archive.last_version and since > archive.last_version):
        raise ValueError(
            f"since={since} outside the archived range 1..{archive.last_version}"
        )
    rebuilt = Archive(new_spec, options or archive.options)
    assert archive.root.timestamp is not None
    for version in range(since, archive.last_version + 1):
        if version in archive.root.timestamp:
            document = archive.retrieve(version)
        else:
            document = None
        try:
            rebuilt.add_version(document)
        except Exception as error:
            raise ValueError(
                f"Stored version {version} does not conform to the new key "
                f"specification: {error}"
            ) from error
    return rebuilt


def checkpoint_archive(
    archive: Archive, keep_last: int, options: Optional[ArchiveOptions] = None
) -> Archive:
    """The Sec. 9 checkpointing proposal: "a fresh archive may be
    created at every kth addition".  Returns a fresh archive holding
    only the last ``keep_last`` versions (renumbered from 1)."""
    if keep_last < 1:
        raise ValueError("Must keep at least one version")
    first = max(1, archive.last_version - keep_last + 1)
    return rearchive(archive, archive.spec, options=options, since=first)
