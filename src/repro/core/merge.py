"""Nested Merge (Sec. 4.2): merge a new version into an archive.

``nested_merge`` implements the paper's algorithm: walk archive and
version top-down in lock-step, pairing children with equal key labels
via a merge-join over label-sorted child lists, augmenting timestamps of
surviving nodes with the new version number, terminating timestamps of
deleted nodes, and inserting new subtrees with the new version number
as their timestamp.  Frontier nodes — where keys run out — are handled
by whole-content value comparison (or by an SCCS weave under *further
compaction*, Example 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..keys.annotate import AnnotatedDocument, KeyLabel
from ..xmltree.canonical import canonical_form
from ..xmltree.model import Element
from .compaction import merge_weave, weave_from_content
from .fingerprint import Fingerprinter
from .nodes import Alternative, ArchiveNode, ContentNode
from .versionset import VersionSet

SortToken = Callable[[KeyLabel], tuple]


@dataclass
class MergeOptions:
    """Tunable behaviour of Nested Merge.

    * ``fingerprinter`` — when set, keyed siblings are ordered by
      fingerprints of their key values (Sec. 4.3) instead of the values
      themselves; correctness is preserved under collisions.
    * ``compaction`` — when ``True``, frontier content is stored as an
      SCCS-style weave (*further compaction*) instead of per-timestamp
      alternatives.
    """

    fingerprinter: Optional[Fingerprinter] = None
    compaction: bool = False

    def sort_token(self) -> SortToken:
        if self.fingerprinter is not None:
            return self.fingerprinter.sort_token
        return KeyLabel.sort_token


@dataclass
class MergeStats:
    """Counters describing one merge, useful for experiments and tests."""

    nodes_matched: int = 0
    nodes_inserted: int = 0
    nodes_terminated: int = 0
    frontier_content_changes: int = 0


def _content_equal(a: list[ContentNode], b: list[ContentNode]) -> bool:
    if len(a) != len(b):
        return False
    return all(canonical_form(x) == canonical_form(y) for x, y in zip(a, b))


def _copy_content(nodes: list[ContentNode]) -> list[ContentNode]:
    return [node.copy() for node in nodes]


def _attribute_pairs(node: Element) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((attr.name, attr.value) for attr in node.attributes))


class AttributeChangeError(ValueError):
    """An attribute of a persisting keyed node changed between versions.

    The archiver requires keyed-node attributes to be stable (they are
    key values in all the paper's datasets); model a mutable attribute
    as a keyed child element instead.
    """


def build_archive_subtree(
    node: Element,
    document: AnnotatedDocument,
    timestamp: Optional[VersionSet],
    version: int,
    options: MergeOptions,
) -> ArchiveNode:
    """Convert a version-``version`` subtree into archive form.

    The subtree root carries ``timestamp``; descendants inherit it (the
    whole subtree enters existence at once), so they store no timestamps
    of their own — this is where timestamp inheritance saves space.
    Weave segments always carry explicit timestamps, hence ``version``.
    """
    label = document.label(node)
    assert label is not None, f"build_archive_subtree on unkeyed node <{node.tag}>"
    archive_node = ArchiveNode(
        label=label, timestamp=timestamp, attributes=_attribute_pairs(node)
    )
    if document.is_frontier(node):
        if options.compaction:
            archive_node.weave = weave_from_content(
                node.children, VersionSet([version])
            )
        else:
            archive_node.alternatives = [
                Alternative(timestamp=None, content=_copy_content(node.children))
            ]
        return archive_node
    token = options.sort_token()
    children = [
        build_archive_subtree(child, document, None, version, options)
        for child in node.element_children()
    ]
    children.sort(key=lambda c: token(c.label))
    archive_node.children = children
    return archive_node


def nested_merge(
    archive_root: ArchiveNode,
    document: AnnotatedDocument,
    version: int,
    options: Optional[MergeOptions] = None,
) -> MergeStats:
    """Merge version ``version`` (the annotated document) into the archive.

    ``archive_root`` is the paper's virtual root ``r_A``; the document
    root is matched against its children by label.  The archive root's
    timestamp must already include ``version`` (the
    :class:`~repro.core.archive.Archive` facade maintains it).
    """
    options = options or MergeOptions()
    stats = MergeStats()
    root_label = document.label(document.root)
    assert root_label is not None
    inherited = archive_root.effective_timestamp(VersionSet())
    token = options.sort_token()

    existing = archive_root.find_child(root_label)
    if existing is None:
        subtree = build_archive_subtree(
            document.root, document, VersionSet([version]), version, options
        )
        archive_root.children.append(subtree)
        archive_root.children.sort(key=lambda c: token(c.label))
        stats.nodes_inserted += 1
    else:
        _merge_node(existing, document.root, document, version, inherited, options, stats)
    # Terminate any sibling roots absent from this version.
    for child in archive_root.children:
        if child.label != root_label and child.timestamp is None:
            child.timestamp = inherited.without(version)
    return stats


def _merge_node(
    x: ArchiveNode,
    y: Element,
    document: AnnotatedDocument,
    version: int,
    inherited: VersionSet,
    options: MergeOptions,
    stats: MergeStats,
) -> None:
    """The paper's ``Nested Merge(x, y, T)`` with ``label(x) = label(y)``."""
    stats.nodes_matched += 1
    incoming_attributes = _attribute_pairs(y)
    if incoming_attributes != x.attributes:
        raise AttributeChangeError(
            f"Attributes of <{x.label}> changed from {x.attributes} to "
            f"{incoming_attributes}; keyed-node attributes must be stable"
        )
    if x.timestamp is not None:
        x.timestamp.add(version)
        current = x.timestamp
    else:
        current = inherited

    if document.is_frontier(y):
        _merge_frontier(x, y, version, current, options, stats)
        return

    token = options.sort_token()
    version_children = sorted(
        y.element_children(), key=lambda child: token(document.label(child))
    )
    # x.children is maintained sorted by the same token; merge-join.
    merged: list[ArchiveNode] = []
    i, j = 0, 0
    archive_children = x.children
    while i < len(archive_children) and j < len(version_children):
        x_child = archive_children[i]
        y_child = version_children[j]
        x_token = token(x_child.label)
        y_token = token(document.label(y_child))
        if x_token == y_token:
            _merge_node(x_child, y_child, document, version, current, options, stats)
            merged.append(x_child)
            i += 1
            j += 1
        elif x_token < y_token:
            _terminate(x_child, version, current, stats)
            merged.append(x_child)
            i += 1
        else:
            merged.append(_insert(x, y_child, document, version, options, stats))
            j += 1
    while i < len(archive_children):
        _terminate(archive_children[i], version, current, stats)
        merged.append(archive_children[i])
        i += 1
    while j < len(version_children):
        merged.append(_insert(x, version_children[j], document, version, options, stats))
        j += 1
    x.children = merged


def _terminate(
    x_child: ArchiveNode, version: int, current: VersionSet, stats: MergeStats
) -> None:
    """Action (b): the archive child is absent from this version."""
    if x_child.timestamp is None:
        x_child.timestamp = current.without(version)
        stats.nodes_terminated += 1
    # A child with its own timestamp was simply not augmented; nothing to do.


def _insert(
    parent: ArchiveNode,
    y_child: Element,
    document: AnnotatedDocument,
    version: int,
    options: MergeOptions,
    stats: MergeStats,
) -> ArchiveNode:
    """Action (c): the version child is new; graft it with timestamp {i}."""
    stats.nodes_inserted += 1
    return build_archive_subtree(
        y_child, document, VersionSet([version]), version, options
    )


def _merge_frontier(
    x: ArchiveNode,
    y: Element,
    version: int,
    current: VersionSet,
    options: MergeOptions,
    stats: MergeStats,
) -> None:
    """Frontier-node branch of the paper's algorithm."""
    if x.weave is not None:
        changed = merge_weave(x.weave, y.children, version)
        if changed:
            stats.frontier_content_changes += 1
        return
    assert x.alternatives is not None, "frontier node lost its content store"
    if merge_alternatives(x.alternatives, y.children, version, current):
        stats.frontier_content_changes += 1


def merge_alternatives(
    alternatives: list[Alternative],
    content: list[ContentNode],
    version: int,
    current: VersionSet,
) -> bool:
    """Merge one version's frontier content into an alternative list.

    Implements the frontier branch of the paper's algorithm; shared by
    the in-memory merge and the external-memory stream merge.  Returns
    ``True`` when the content changed.
    """
    if len(alternatives) == 1 and alternatives[0].timestamp is None:
        # No timestamp children yet.
        if _content_equal(alternatives[0].content, content):
            return False
        old = alternatives[0]
        old.timestamp = current.without(version)
        alternatives.append(
            Alternative(timestamp=VersionSet([version]), content=_copy_content(content))
        )
        return True
    # All children are timestamp nodes.
    for alternative in alternatives:
        assert alternative.timestamp is not None
        if _content_equal(alternative.content, content):
            alternative.timestamp.add(version)
            return False
    alternatives.append(
        Alternative(timestamp=VersionSet([version]), content=_copy_content(content))
    )
    return True
