"""Nested Merge (Sec. 4.2): merge a new version into an archive.

``nested_merge`` implements the paper's algorithm: walk archive and
version top-down in lock-step, pairing children with equal key labels
via a merge-join over label-sorted child lists, augmenting timestamps of
surviving nodes with the new version number, terminating timestamps of
deleted nodes, and inserting new subtrees with the new version number
as their timestamp.  Frontier nodes — where keys run out — are handled
by whole-content value comparison (or by an SCCS weave under *further
compaction*, Example 4.3).

Batched ingestion threads a :class:`MergeMemo` through the walk: the
memo remembers, per archive node, a fingerprint (Sec. 4.3 digests over
canonical forms) of the subtree it stored after the previous version of
the batch.  When the incoming version's subtree carries the same
fingerprint and the archive subtree is *uniform* (no explicit
timestamps below — see :meth:`ArchiveNode.subtree_uniform`), the merge
skips the whole descent: the paper's accretive workloads leave most
keyed subtrees untouched between versions, so ingestion cost tracks the
delta instead of the archive size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..keys.annotate import AnnotatedDocument, KeyLabel
from ..xmltree.canonical import canonical_form
from ..xmltree.model import Element
from .compaction import lines_to_content, merge_weave, weave_from_content
from .fingerprint import Fingerprinter
from .nodes import Alternative, ArchiveNode, ContentNode, WeaveSegment
from .versionset import VersionSet

SortToken = Callable[[KeyLabel], tuple]


@dataclass
class MergeOptions:
    """Tunable behaviour of Nested Merge.

    * ``fingerprinter`` — when set, keyed siblings are ordered by
      fingerprints of their key values (Sec. 4.3) instead of the values
      themselves; correctness is preserved under collisions.
    * ``compaction`` — when ``True``, frontier content is stored as an
      SCCS-style weave (*further compaction*) instead of per-timestamp
      alternatives.
    """

    fingerprinter: Optional[Fingerprinter] = None
    compaction: bool = False

    def sort_token(self) -> SortToken:
        if self.fingerprinter is not None:
            return self.fingerprinter.sort_token
        return KeyLabel.sort_token


@dataclass
class MergeStats:
    """Counters describing one merge (or a whole batch of merges).

    ``nodes_matched`` counts merge-node visits; the skip counters record
    work the fingerprint memo avoided: ``subtrees_skipped`` unchanged
    keyed subtrees whose descent was short-circuited, ``nodes_skipped``
    the keyed nodes inside them that were never visited, and
    ``frontier_skips`` frontier nodes whose content comparison was
    replaced by a digest hit.  ``versions`` counts merges accumulated
    into this instance (1 for a single ``add_version``).
    """

    nodes_matched: int = 0
    nodes_inserted: int = 0
    nodes_terminated: int = 0
    frontier_content_changes: int = 0
    subtrees_skipped: int = 0
    nodes_skipped: int = 0
    frontier_skips: int = 0
    versions: int = 0

    def accumulate(self, other: "MergeStats") -> "MergeStats":
        """Fold another merge's counters into this one (batch totals)."""
        self.nodes_matched += other.nodes_matched
        self.nodes_inserted += other.nodes_inserted
        self.nodes_terminated += other.nodes_terminated
        self.frontier_content_changes += other.frontier_content_changes
        self.subtrees_skipped += other.subtrees_skipped
        self.nodes_skipped += other.nodes_skipped
        self.frontier_skips += other.frontier_skips
        self.versions += other.versions
        return self

    def nodes_visited(self) -> int:
        """Merge-node visits actually performed (skips excluded)."""
        return self.nodes_matched + self.nodes_inserted


@dataclass
class SubtreeEntry:
    """Memo record for one archive subtree: its content fingerprint as
    of the last merged version, plus its keyed-node count (how many
    merge visits a skip saves)."""

    digest: int
    count: int


@dataclass
class FrontierEntry:
    """Memo record for a timestamped frontier node: the fingerprint of
    the content current at the last merged version, and the storage it
    lives in — the matching :class:`Alternative`, or the weave segments
    visible at that version."""

    digest: int
    alternative: Optional[Alternative] = None
    segments: Optional[list[WeaveSegment]] = None

    def augment(self, version: int) -> None:
        """Apply the unchanged-content merge effect: extend the current
        content's timestamps with ``version``."""
        if self.alternative is not None:
            assert self.alternative.timestamp is not None
            self.alternative.timestamp.add(version)
        if self.segments is not None:
            for segment in self.segments:
                segment.timestamp.add(version)


class MergeMemo:
    """Cross-version fingerprint memo for batched ingestion (Sec. 4.3).

    ``subtree`` maps archive-node ids to :class:`SubtreeEntry`; an entry
    certifies that the node's subtree is uniform (skip-safe) and records
    the digest of the version content it stores.  ``frontier`` maps
    timestamped frontier nodes to the digest of their *current* content.
    ``incoming``/``incoming_counts`` hold the digests of the version
    being merged right now, keyed by element id (refreshed per version
    by :meth:`prepare_version`).

    Skip equality is probabilistic in exactly the sense of the paper's
    fingerprints (DOMHash): the memo uses its own wide digest — 128 bits
    by default, independent of any narrow sorting fingerprinter the
    archive options carry — so a collision is never forced by the
    collision-testing configurations.
    """

    def __init__(self, fingerprinter: Optional[Fingerprinter] = None) -> None:
        self.fingerprinter = fingerprinter or Fingerprinter(bits=128)
        self.subtree: dict[int, SubtreeEntry] = {}
        self.frontier: dict[int, FrontierEntry] = {}
        self.incoming: dict[int, int] = {}
        self.incoming_counts: dict[int, int] = {}

    # -- incoming-version digests ------------------------------------------

    def prepare_version(
        self, document: AnnotatedDocument, options: "MergeOptions"
    ) -> None:
        """Digest every keyed subtree of the incoming version bottom-up.

        Internal nodes hash their children's digests in sort-token order
        (the order the archive stores siblings in), so the digest is
        stable under the keyed-sibling reordering the archive ignores.
        """
        self.incoming = {}
        self.incoming_counts = {}
        fingerprinter = self.fingerprinter
        token = options.sort_token()
        stack: list[tuple[Element, bool]] = [(document.root, False)]
        while stack:
            node, expanded = stack.pop()
            if document.is_frontier(node):
                self.incoming[id(node)] = fingerprinter.frontier_digest(
                    node.tag, _attribute_pairs(node), node.children
                )
                self.incoming_counts[id(node)] = 1
                continue
            if not expanded:
                stack.append((node, True))
                for child in node.element_children():
                    stack.append((child, False))
                continue
            children = sorted(
                node.element_children(), key=lambda c: token(document.label(c))
            )
            self.incoming[id(node)] = fingerprinter.subtree_digest(
                node.tag,
                _attribute_pairs(node),
                (self.incoming[id(child)] for child in children),
            )
            self.incoming_counts[id(node)] = 1 + sum(
                self.incoming_counts[id(child)] for child in children
            )

    # -- seeding from an existing archive ----------------------------------

    def seed(self, archive_root: ArchiveNode, last_version: int) -> None:
        """Prime the memo from an archive that already holds versions.

        Uniform subtrees get :class:`SubtreeEntry` records digesting the
        content they store; timestamped frontier nodes whose content is
        current at ``last_version`` get :class:`FrontierEntry` records.
        A batch appended to an existing archive can then skip from its
        very first version.
        """
        for child in archive_root.children:
            self._seed_node(child, last_version)

    def _seed_node(
        self, node: ArchiveNode, last_version: int
    ) -> tuple[Optional[int], int]:
        """Post-order walk returning ``(digest-if-uniform, keyed count)``."""
        if node.is_frontier:
            if node.content_uniform():
                content = node.alternatives[0].content if node.alternatives else []
                digest = self.fingerprinter.frontier_digest(
                    node.label.tag, node.attributes, content
                )
                self.subtree[id(node)] = SubtreeEntry(digest=digest, count=1)
                return digest, 1
            self._seed_frontier(node, last_version)
            return None, 1
        child_digests: list[Optional[int]] = []
        count = 1
        uniform = True
        for child in node.children:
            digest, child_count = self._seed_node(child, last_version)
            count += child_count
            if child.timestamp is not None or digest is None:
                uniform = False
            child_digests.append(digest)
        if not uniform:
            return None, count
        digest = self.fingerprinter.subtree_digest(
            node.label.tag, node.attributes, child_digests  # type: ignore[arg-type]
        )
        self.subtree[id(node)] = SubtreeEntry(digest=digest, count=count)
        return digest, count

    def _seed_frontier(self, node: ArchiveNode, last_version: int) -> None:
        if node.alternatives is not None:
            for alternative in node.alternatives:
                if (
                    alternative.timestamp is not None
                    and last_version in alternative.timestamp
                ):
                    digest = self.fingerprinter.frontier_digest(
                        node.label.tag, node.attributes, alternative.content
                    )
                    self.frontier[id(node)] = FrontierEntry(
                        digest=digest, alternative=alternative
                    )
                    return
            return
        assert node.weave is not None
        segments = [
            segment
            for segment in node.weave.segments
            if last_version in segment.timestamp
        ]
        if not segments:
            return
        content = lines_to_content(node.weave.lines_at(last_version))
        digest = self.fingerprinter.frontier_digest(
            node.label.tag, node.attributes, content
        )
        self.frontier[id(node)] = FrontierEntry(digest=digest, segments=segments)


def _content_equal(a: list[ContentNode], b: list[ContentNode]) -> bool:
    if len(a) != len(b):
        return False
    return all(canonical_form(x) == canonical_form(y) for x, y in zip(a, b))


def _copy_content(nodes: list[ContentNode]) -> list[ContentNode]:
    return [node.copy() for node in nodes]


def _attribute_pairs(node: Element) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((attr.name, attr.value) for attr in node.attributes))


class AttributeChangeError(ValueError):
    """An attribute of a persisting keyed node changed between versions.

    The archiver requires keyed-node attributes to be stable (they are
    key values in all the paper's datasets); model a mutable attribute
    as a keyed child element instead.
    """


def build_archive_subtree(
    node: Element,
    document: AnnotatedDocument,
    timestamp: Optional[VersionSet],
    version: int,
    options: MergeOptions,
) -> ArchiveNode:
    """Convert a version-``version`` subtree into archive form.

    The subtree root carries ``timestamp``; descendants inherit it (the
    whole subtree enters existence at once), so they store no timestamps
    of their own — this is where timestamp inheritance saves space.
    Weave segments always carry explicit timestamps, hence ``version``.
    """
    label = document.label(node)
    assert label is not None, f"build_archive_subtree on unkeyed node <{node.tag}>"
    archive_node = ArchiveNode(
        label=label, timestamp=timestamp, attributes=_attribute_pairs(node)
    )
    if document.is_frontier(node):
        if options.compaction:
            archive_node.weave = weave_from_content(
                node.children, VersionSet([version])
            )
        else:
            archive_node.alternatives = [
                Alternative(timestamp=None, content=_copy_content(node.children))
            ]
        return archive_node
    token = options.sort_token()
    children = [
        build_archive_subtree(child, document, None, version, options)
        for child in node.element_children()
    ]
    children.sort(key=lambda c: token(c.label))
    archive_node.children = children
    return archive_node


def nested_merge(
    archive_root: ArchiveNode,
    document: AnnotatedDocument,
    version: int,
    options: Optional[MergeOptions] = None,
    memo: Optional[MergeMemo] = None,
) -> MergeStats:
    """Merge version ``version`` (the annotated document) into the archive.

    ``archive_root`` is the paper's virtual root ``r_A``; the document
    root is matched against its children by label.  The archive root's
    timestamp must already include ``version`` (the
    :class:`~repro.core.archive.Archive` facade maintains it).

    ``memo``, when given, must have been prepared for this version with
    :meth:`MergeMemo.prepare_version`; unchanged uniform subtrees are
    then skipped instead of descended.
    """
    options = options or MergeOptions()
    stats = MergeStats()
    root_label = document.label(document.root)
    assert root_label is not None
    inherited = archive_root.effective_timestamp(VersionSet())
    token = options.sort_token()

    existing = archive_root.find_child(root_label)
    if existing is None:
        subtree = _insert(
            archive_root, document.root, document, version, options, stats, memo
        )
        archive_root.children.append(subtree)
        archive_root.children.sort(key=lambda c: token(c.label))
    else:
        _merge_node(
            existing, document.root, document, version, inherited, options, stats, memo
        )
    # Terminate any sibling roots absent from this version.
    for child in archive_root.children:
        if child.label != root_label and child.timestamp is None:
            child.timestamp = inherited.without(version)
    return stats


def _merge_node(
    x: ArchiveNode,
    y: Element,
    document: AnnotatedDocument,
    version: int,
    inherited: VersionSet,
    options: MergeOptions,
    stats: MergeStats,
    memo: Optional[MergeMemo] = None,
) -> bool:
    """The paper's ``Nested Merge(x, y, T)`` with ``label(x) = label(y)``.

    Returns whether the subtree below ``x`` is *uniform* after the merge
    (skip-safe for the next version: no explicit timestamp below needs
    augmenting while the content stays unchanged).
    """
    stats.nodes_matched += 1
    digest = memo.incoming.get(id(y)) if memo is not None else None
    if memo is not None and digest is not None:
        entry = memo.subtree.get(id(x))
        if entry is not None and entry.digest == digest:
            # Fingerprint hit on a uniform subtree: the only merge effect
            # is augmenting x's own timestamp (descendants inherit it).
            if x.timestamp is not None:
                x.timestamp.add(version)
            stats.subtrees_skipped += 1
            stats.nodes_skipped += entry.count - 1
            return True
    incoming_attributes = _attribute_pairs(y)
    if incoming_attributes != x.attributes:
        raise AttributeChangeError(
            f"Attributes of <{x.label}> changed from {x.attributes} to "
            f"{incoming_attributes}; keyed-node attributes must be stable"
        )
    if x.timestamp is not None:
        x.timestamp.add(version)
        current = x.timestamp
    else:
        current = inherited

    if document.is_frontier(y):
        _merge_frontier(x, y, version, current, options, stats, memo, digest)
        uniform = x.content_uniform()
        _note_subtree(memo, x, y, digest, uniform)
        return uniform

    token = options.sort_token()
    version_children = sorted(
        y.element_children(), key=lambda child: token(document.label(child))
    )
    # x.children is maintained sorted by the same token; merge-join.
    merged: list[ArchiveNode] = []
    uniform = True
    i, j = 0, 0
    archive_children = x.children
    while i < len(archive_children) and j < len(version_children):
        x_child = archive_children[i]
        y_child = version_children[j]
        x_token = token(x_child.label)
        y_token = token(document.label(y_child))
        if x_token == y_token:
            child_uniform = _merge_node(
                x_child, y_child, document, version, current, options, stats, memo
            )
            if not child_uniform or x_child.timestamp is not None:
                uniform = False
            merged.append(x_child)
            i += 1
            j += 1
        elif x_token < y_token:
            # A terminated child never contains ``version``, so it needs
            # no augmentation from future skips: uniformity survives.
            _terminate(x_child, version, current, stats)
            merged.append(x_child)
            i += 1
        else:
            merged.append(
                _insert(x, y_child, document, version, options, stats, memo)
            )
            uniform = False  # the fresh subtree's root timestamp is {version}
            j += 1
    while i < len(archive_children):
        _terminate(archive_children[i], version, current, stats)
        merged.append(archive_children[i])
        i += 1
    while j < len(version_children):
        merged.append(
            _insert(x, version_children[j], document, version, options, stats, memo)
        )
        uniform = False
        j += 1
    x.children = merged
    _note_subtree(memo, x, y, digest, uniform)
    return uniform


def _note_subtree(
    memo: Optional[MergeMemo],
    x: ArchiveNode,
    y: Element,
    digest: Optional[int],
    uniform: bool,
) -> None:
    """Record (or retract) the skip certificate for a merged subtree."""
    if memo is None or digest is None:
        return
    if uniform:
        memo.subtree[id(x)] = SubtreeEntry(
            digest=digest, count=memo.incoming_counts[id(y)]
        )
    else:
        memo.subtree.pop(id(x), None)


def _terminate(
    x_child: ArchiveNode, version: int, current: VersionSet, stats: MergeStats
) -> None:
    """Action (b): the archive child is absent from this version."""
    if x_child.timestamp is None:
        x_child.timestamp = current.without(version)
        stats.nodes_terminated += 1
    # A child with its own timestamp was simply not augmented; nothing to do.


def _insert(
    parent: ArchiveNode,
    y_child: Element,
    document: AnnotatedDocument,
    version: int,
    options: MergeOptions,
    stats: MergeStats,
    memo: Optional[MergeMemo] = None,
) -> ArchiveNode:
    """Action (c): the version child is new; graft it with timestamp {i}."""
    stats.nodes_inserted += 1
    node = build_archive_subtree(
        y_child, document, VersionSet([version]), version, options
    )
    if memo is not None:
        _memoize_built(node, y_child, document, options, memo)
    return node


def _memoize_built(
    node: ArchiveNode,
    y: Element,
    document: AnnotatedDocument,
    options: MergeOptions,
    memo: MergeMemo,
) -> bool:
    """Register skip certificates for every uniform keyed subtree of a
    freshly built archive subtree, so the very next version can skip
    its unchanged parts (the first version of a batch inserts the whole
    document through this path).  Returns the root's uniformity."""
    digest = memo.incoming.get(id(y))
    if node.is_frontier:
        uniform = node.content_uniform()
    else:
        token = options.sort_token()
        ordered = sorted(
            y.element_children(), key=lambda child: token(document.label(child))
        )
        # build_archive_subtree sorted node.children by the same (unique)
        # tokens, so the lists pair positionally.
        uniform = True
        for child_node, child_y in zip(node.children, ordered):
            if not _memoize_built(child_node, child_y, document, options, memo):
                uniform = False
    if uniform and digest is not None:
        memo.subtree[id(node)] = SubtreeEntry(
            digest=digest, count=memo.incoming_counts[id(y)]
        )
    return uniform


def _merge_frontier(
    x: ArchiveNode,
    y: Element,
    version: int,
    current: VersionSet,
    options: MergeOptions,
    stats: MergeStats,
    memo: Optional[MergeMemo] = None,
    digest: Optional[int] = None,
) -> None:
    """Frontier-node branch of the paper's algorithm."""
    if memo is not None and digest is not None:
        entry = memo.frontier.get(id(x))
        if entry is not None and entry.digest == digest:
            entry.augment(version)
            stats.frontier_skips += 1
            return
    if x.weave is not None:
        changed = merge_weave(x.weave, y.children, version)
        if changed:
            stats.frontier_content_changes += 1
        _note_frontier(memo, x, version, digest)
        return
    assert x.alternatives is not None, "frontier node lost its content store"
    if merge_alternatives(x.alternatives, y.children, version, current):
        stats.frontier_content_changes += 1
    _note_frontier(memo, x, version, digest)


def _note_frontier(
    memo: Optional[MergeMemo],
    x: ArchiveNode,
    version: int,
    digest: Optional[int],
) -> None:
    """Remember which stored content is current after a frontier merge."""
    if memo is None or digest is None:
        return
    if x.content_uniform():
        # Untimestamped content is covered by the subtree certificate.
        memo.frontier.pop(id(x), None)
        return
    if x.weave is not None:
        segments = [
            segment for segment in x.weave.segments if version in segment.timestamp
        ]
        memo.frontier[id(x)] = FrontierEntry(digest=digest, segments=segments)
        return
    assert x.alternatives is not None
    for alternative in x.alternatives:
        if alternative.timestamp is not None and version in alternative.timestamp:
            memo.frontier[id(x)] = FrontierEntry(
                digest=digest, alternative=alternative
            )
            return


def merge_alternatives(
    alternatives: list[Alternative],
    content: list[ContentNode],
    version: int,
    current: VersionSet,
) -> bool:
    """Merge one version's frontier content into an alternative list.

    Implements the frontier branch of the paper's algorithm; shared by
    the in-memory merge and the external-memory stream merge.  Returns
    ``True`` when the content changed.
    """
    if len(alternatives) == 1 and alternatives[0].timestamp is None:
        # No timestamp children yet.
        if _content_equal(alternatives[0].content, content):
            return False
        old = alternatives[0]
        old.timestamp = current.without(version)
        alternatives.append(
            Alternative(timestamp=VersionSet([version]), content=_copy_content(content))
        )
        return True
    # All children are timestamp nodes.
    for alternative in alternatives:
        assert alternative.timestamp is not None
        if _content_equal(alternative.content, content):
            alternative.timestamp.add(version)
            return False
    alternatives.append(
        Alternative(timestamp=VersionSet([version]), content=_copy_content(content))
    )
    return True
