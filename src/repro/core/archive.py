"""The archive: merged versions in one keyed, timestamped hierarchy.

:class:`Archive` is the public facade over the whole pipeline of the
paper's Fig. 6: ``add_version`` annotates keys and runs Nested Merge;
``retrieve`` reconstructs any past version with a single scan;
``history`` returns the temporal history of a keyed element; and
``to_xml_string`` / ``from_xml_string`` round-trip the archive through
the ``<T t="...">`` XML representation of Fig. 5 — "our archive can be
easily represented as yet another XML document".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..keys.annotate import KeyLabel, KeyValue, annotate_keys, compute_key_value
from ..keys.paths import Path, format_path, parse_path, value_at
from ..keys.spec import KeySpec
from ..xmltree.canonical import canonical_form
from ..xmltree.model import Attribute, Element, Text
from ..xmltree.parser import parse_document
from ..xmltree.serializer import to_pretty_string, to_string
from .compaction import lines_to_content, weave_content_at
from .fingerprint import Fingerprinter
from .merge import MergeOptions, MergeStats, nested_merge
from .nodes import Alternative, ArchiveNode, Weave, WeaveSegment
from .versionset import VersionSet

#: Tag of timestamp elements; the paper puts it in its own namespace.
T_TAG = "T"
#: Attribute carrying the interval-encoded timestamp on a T element.
T_ATTR = "t"
#: Tag of the synthetic root that tracks empty versions (Sec. 2).
ROOT_TAG = "root"
#: Attribute on the outermost ``<T>`` wrapper naming the frontier
#: storage form, so an archive file is self-describing; the two forms
#: share the ``<T>`` surface syntax and misreading one as the other
#: silently corrupts content.  Absent only in archives written by
#: older tools, which must pass matching options at load time.
STORAGE_ATTR = "storage"
#: The :data:`STORAGE_ATTR` value marking weave (compaction) storage.
STORAGE_WEAVE = "weave"
#: The :data:`STORAGE_ATTR` value marking per-timestamp alternatives.
STORAGE_ALTERNATIVES = "alternatives"


class ArchiveError(ValueError):
    """Raised on malformed archives or unusable queries."""


@dataclass
class ArchiveOptions:
    """Behavioural switches of the archiver.

    * ``fingerprinter`` — order/merge keyed siblings by fingerprints of
      their key values (Sec. 4.3).
    * ``compaction`` — store frontier content as an SCCS weave
      (*further compaction*, Example 4.3) instead of full alternatives.
      The two storage forms share the ``<T>`` surface syntax, so
      serialized archives carry a ``storage="weave"`` marker and
      :meth:`Archive.from_xml` restores the right form regardless of
      the options passed at load time.
    """

    fingerprinter: Optional[Fingerprinter] = None
    compaction: bool = False

    def merge_options(self) -> MergeOptions:
        return MergeOptions(
            fingerprinter=self.fingerprinter, compaction=self.compaction
        )


@dataclass
class ArchiveStats:
    """Size/shape counters of an archive."""

    versions: int
    nodes: int
    stored_timestamps: int
    serialized_bytes: int


@dataclass
class ElementHistory:
    """Temporal history of one keyed element (Sec. 7.2).

    ``existence`` is the set of versions in which the element occurs.
    For frontier elements, ``changes`` lists ``(versions, content)``
    pairs: each distinct content value with the versions during which it
    was current — the "meaningful change description" the paper
    contrasts with diff scripts.
    """

    path: str
    existence: VersionSet
    changes: Optional[list[tuple[VersionSet, str]]] = None


class Archive:
    """A merged, timestamped archive of document versions."""

    def __init__(self, spec: KeySpec, options: Optional[ArchiveOptions] = None) -> None:
        self.spec = spec
        self.options = options or ArchiveOptions()
        self.root = ArchiveNode(
            label=KeyLabel(tag=ROOT_TAG, key=()), timestamp=VersionSet()
        )

    # -- versions ----------------------------------------------------------

    @property
    def last_version(self) -> int:
        """The highest archived version number (0 before any merge)."""
        assert self.root.timestamp is not None
        if not self.root.timestamp:
            return 0
        return self.root.timestamp.max_version()

    @property
    def version_count(self) -> int:
        assert self.root.timestamp is not None
        return len(self.root.timestamp)

    def add_version(self, document: Optional[Element], memo=None) -> MergeStats:
        """Archive the next version.

        ``document`` is the new version's root element; ``None`` records
        an *empty* version (the paper's Sec. 2: the root node's
        timestamp advances while the database node's does not).

        ``memo`` is a :class:`~repro.core.merge.MergeMemo` carried by a
        batched :class:`~repro.core.ingest.IngestSession`; unchanged
        keyed subtrees are then fingerprint-skipped instead of descended.
        """
        version = self.last_version + 1
        assert self.root.timestamp is not None
        self.root.timestamp.add(version)
        if document is None:
            # Terminate timestamps of the document roots.
            inherited = self.root.timestamp
            for child in self.root.children:
                if child.timestamp is None:
                    child.timestamp = inherited.without(version)
            return MergeStats(versions=1)
        annotated = annotate_keys(document, self.spec)
        options = self.options.merge_options()
        if memo is not None:
            memo.prepare_version(annotated, options)
        stats = nested_merge(self.root, annotated, version, options, memo=memo)
        stats.versions = 1
        return stats

    def add_versions(
        self, documents: Iterable[Optional[Element]]
    ) -> MergeStats:
        """Archive a whole sequence of versions in one batched pass.

        Equivalent to calling :meth:`add_version` on each document in
        order — the resulting archive is identical — but a shared
        fingerprint memo skips merge descent into keyed subtrees that
        did not change between consecutive versions (Sec. 4.3 digests,
        memoized across the batch).  Returns cumulative
        :class:`MergeStats` whose skip counters record the saved work.
        """
        from .ingest import IngestSession

        return IngestSession(self).add_all(documents)

    # -- retrieval (Sec. 7.1 single-scan form) ---------------------------------

    def retrieve(self, version: int) -> Optional[Element]:
        """Reconstruct version ``version``; ``None`` for an empty version.

        Keyed siblings come back in key order — the archive deliberately
        "ignores the order among elements with keys" (Sec. 2).
        """
        assert self.root.timestamp is not None
        if version not in self.root.timestamp:
            raise ArchiveError(
                f"Version {version} is not in the archive "
                f"(have {self.root.timestamp.to_text() or 'none'})"
            )
        for child in self.root.children:
            rebuilt = self._reconstruct(child, version, self.root.timestamp)
            if rebuilt is not None:
                return rebuilt
        return None

    def _reconstruct(
        self, node: ArchiveNode, version: int, inherited: VersionSet
    ) -> Optional[Element]:
        timestamp = node.effective_timestamp(inherited)
        if version not in timestamp:
            return None
        element = Element(node.label.tag)
        for name, value in node.attributes:
            element.set_attribute(name, value)
        if node.weave is not None:
            for content in weave_content_at(node.weave, version):
                element.append(content)
            return element
        if node.alternatives is not None:
            for alternative in node.alternatives:
                if alternative.timestamp is None or version in alternative.timestamp:
                    for content in alternative.content:
                        element.append(content.copy())
                    break
            return element
        for child in node.children:
            rebuilt = self._reconstruct(child, version, timestamp)
            if rebuilt is not None:
                element.append(rebuilt)
        return element

    # -- temporal history (Sec. 7.2) ----------------------------------------------

    def history(self, path: str) -> ElementHistory:
        """History of the element at a keyed path.

        Path syntax matches the paper's examples:
        ``/db/dept[name=finance]/emp[fn=John, ln=Doe]`` — each step is a
        tag plus the key-path/value pairs identifying the node among its
        siblings.  Steps with singleton keys take no predicate
        (``/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal``).
        """
        steps = _parse_history_path(path)
        node = self.root
        assert self.root.timestamp is not None
        inherited = self.root.timestamp
        for tag, key_value in steps:
            label = KeyLabel(tag=tag, key=key_value)
            child = node.find_child(label)
            if child is None:
                raise ArchiveError(f"No element {label} in the archive under {node.label}")
            inherited = child.effective_timestamp(inherited)
            node = child
        return ElementHistory(
            path=path,
            existence=inherited.copy(),
            changes=self._content_changes(node, inherited),
        )

    @staticmethod
    def _content_changes(
        node: ArchiveNode, existence: VersionSet
    ) -> Optional[list[tuple[VersionSet, str]]]:
        if node.alternatives is not None:
            changes = []
            for alternative in node.alternatives:
                timestamp = (
                    alternative.timestamp.copy()
                    if alternative.timestamp is not None
                    else existence.copy()
                )
                rendered = "".join(
                    to_string(c) if isinstance(c, Element) else c.text
                    for c in alternative.content
                )
                changes.append((timestamp, rendered))
            return changes
        if node.weave is not None:
            changes = []
            previous: Optional[str] = None
            run: Optional[VersionSet] = None
            for version in existence:
                rendered = "\n".join(node.weave.lines_at(version))
                if rendered == previous and run is not None:
                    run.add(version)
                else:
                    if run is not None and previous is not None:
                        changes.append((run, previous))
                    run = VersionSet([version])
                    previous = rendered
            if run is not None and previous is not None:
                changes.append((run, previous))
            return changes
        return None

    # -- XML representation (Fig. 5) -------------------------------------------------

    def to_xml(self) -> Element:
        """The archive as an XML element tree (Fig. 5)."""
        assert self.root.timestamp is not None
        wrapper = Element(T_TAG)
        wrapper.set_attribute(T_ATTR, self.root.timestamp.to_text())
        wrapper.set_attribute(
            STORAGE_ATTR,
            STORAGE_WEAVE if self.options.compaction else STORAGE_ALTERNATIVES,
        )
        root_element = wrapper.append(Element(ROOT_TAG))
        for child in self.root.children:
            self._emit(child, root_element)
        return wrapper

    def to_xml_string(self, pretty: bool = True) -> str:
        xml = self.to_xml()
        return to_pretty_string(xml) if pretty else to_string(xml)

    def _emit(self, node: ArchiveNode, parent: Element) -> None:
        element = Element(node.label.tag)
        for name, value in node.attributes:
            element.set_attribute(name, value)
        if node.timestamp is not None:
            wrapper = Element(T_TAG)
            wrapper.set_attribute(T_ATTR, node.timestamp.to_text())
            wrapper.append(element)
            parent.append(wrapper)
        else:
            parent.append(element)
        if node.weave is not None:
            for segment in node.weave.segments:
                t_node = Element(T_TAG)
                t_node.set_attribute(T_ATTR, segment.timestamp.to_text())
                t_node.append(Text("\n".join(segment.lines)))
                element.append(t_node)
            return
        if node.alternatives is not None:
            if len(node.alternatives) == 1 and node.alternatives[0].timestamp is None:
                for content in node.alternatives[0].content:
                    element.append(content.copy())
            else:
                for alternative in node.alternatives:
                    assert alternative.timestamp is not None
                    t_node = Element(T_TAG)
                    t_node.set_attribute(T_ATTR, alternative.timestamp.to_text())
                    for content in alternative.content:
                        t_node.append(content.copy())
                    element.append(t_node)
            return
        for child in node.children:
            self._emit(child, element)

    # -- parsing the XML representation back ---------------------------------------------

    @classmethod
    def from_xml_string(
        cls,
        text: str,
        spec: KeySpec,
        options: Optional[ArchiveOptions] = None,
    ) -> "Archive":
        """Parse an archive previously written by :meth:`to_xml_string`.

        The frontier storage form is read from the archive's own
        ``storage`` marker, so weave and alternatives archives both
        load correctly whatever ``options`` says; ``options`` supplies
        the remaining switches (and the storage form for marker-less
        archives written by older tools).
        """
        return cls.from_xml(parse_document(text), spec, options)

    @classmethod
    def from_xml(
        cls,
        xml: Element,
        spec: KeySpec,
        options: Optional[ArchiveOptions] = None,
    ) -> "Archive":
        archive = cls(spec, options)
        if xml.tag != T_TAG or xml.get_attribute(T_ATTR) is None:
            raise ArchiveError("Archive XML must start with a <T t='...'> wrapper")
        marker = xml.get_attribute(STORAGE_ATTR)
        if marker is not None:
            if marker not in (STORAGE_WEAVE, STORAGE_ALTERNATIVES):
                raise ArchiveError(f"Unknown archive storage form {marker!r}")
            compaction = marker == STORAGE_WEAVE
            if compaction != archive.options.compaction:
                # The file knows its own storage form; never mutate the
                # caller's (possibly shared) options object.
                archive.options = ArchiveOptions(
                    fingerprinter=archive.options.fingerprinter,
                    compaction=compaction,
                )
        assert archive.root.timestamp is not None
        timestamp_text = xml.get_attribute(T_ATTR) or ""
        archive.root.timestamp = VersionSet.parse(timestamp_text)
        root_element = xml.find(ROOT_TAG)
        if root_element is None:
            raise ArchiveError(f"Archive XML lacks the <{ROOT_TAG}> element")
        for child in root_element.children:
            archive._read_top(child)
        token = archive.options.merge_options().sort_token()
        archive.root.children.sort(key=lambda c: token(c.label))
        return archive

    def _read_top(self, child) -> None:
        if isinstance(child, Text):
            if child.text.strip():
                raise ArchiveError("Stray text directly under the archive root")
            return
        if child.tag == T_TAG:
            timestamp = VersionSet.parse(child.get_attribute(T_ATTR) or "")
            for grandchild in child.element_children():
                self.root.children.append(
                    self._read_node(grandchild, timestamp.copy(), (grandchild.tag,))
                )
        else:
            self.root.children.append(self._read_node(child, None, (child.tag,)))

    def _read_node(
        self, element: Element, timestamp: Optional[VersionSet], path: Path
    ) -> ArchiveNode:
        label = self._label_for(element, path)
        node = ArchiveNode(
            label=label,
            timestamp=timestamp,
            attributes=tuple(
                sorted((attr.name, attr.value) for attr in element.attributes)
            ),
        )
        if self._is_frontier(path):
            self._read_frontier_content(element, node)
            return node
        token = self.options.merge_options().sort_token()
        for child in element.children:
            if isinstance(child, Text):
                if child.text.strip():
                    raise ArchiveError(
                        f"Text above the frontier in archive at {format_path(path)}"
                    )
                continue
            if child.tag == T_TAG:
                child_timestamp = VersionSet.parse(child.get_attribute(T_ATTR) or "")
                for grandchild in child.element_children():
                    node.children.append(
                        self._read_node(
                            grandchild,
                            child_timestamp.copy(),
                            path + (grandchild.tag,),
                        )
                    )
            else:
                node.children.append(self._read_node(child, None, path + (child.tag,)))
        node.children.sort(key=lambda c: token(c.label))
        return node

    def _read_frontier_content(self, element: Element, node: ArchiveNode) -> None:
        t_children = [
            child
            for child in element.element_children()
            if child.tag == T_TAG and child.get_attribute(T_ATTR) is not None
        ]
        if self.options.compaction:
            segments = []
            for t_child in t_children:
                lines_text = t_child.text_content()
                segments.append(
                    WeaveSegment(
                        timestamp=VersionSet.parse(t_child.get_attribute(T_ATTR) or ""),
                        lines=lines_text.split("\n") if lines_text else [],
                    )
                )
            node.weave = Weave(segments=segments)
            return
        if t_children:
            node.alternatives = [
                Alternative(
                    timestamp=VersionSet.parse(t_child.get_attribute(T_ATTR) or ""),
                    content=[c.copy() for c in t_child.children],
                )
                for t_child in t_children
            ]
        else:
            node.alternatives = [
                Alternative(
                    timestamp=None, content=[c.copy() for c in element.children]
                )
            ]

    def _label_for(self, element: Element, path: Path) -> KeyLabel:
        if len(self.spec) == 0:
            return KeyLabel(tag=element.tag, key=())
        key = self.spec.key_for(path)
        if key is None:
            raise ArchiveError(
                f"Archive element at {format_path(path)} is not keyed by the spec"
            )
        return KeyLabel(
            tag=element.tag,
            key=compute_key_value(element, key, value_of=self._archived_value_at),
        )

    def _archived_value_at(self, target) -> str:
        """``value_at`` over the Fig. 5 encoding.

        In the serialized archive a key target is a frontier element
        whose content may be wrapped in ``<T t="...">`` nodes —
        per-timestamp alternatives, or weave segments under compaction.
        Key values are stable over a node's lifetime (they define its
        identity), so decoding any one stored state yields *the* logical
        value; labels then match the ones live documents annotate to.
        """
        if isinstance(target, Attribute):
            return target.value
        t_children = [
            child
            for child in target.element_children()
            if child.tag == T_TAG and child.get_attribute(T_ATTR) is not None
        ]
        if not t_children:
            return value_at(target)
        attr_part = "".join(
            f'@{attr.name}="{attr.value}"'
            for attr in sorted(target.attributes, key=lambda a: a.name)
        )
        if self.options.compaction:
            # Reassemble the content visible at the first archived state:
            # every segment whose timestamp covers the anchor version.
            anchor = VersionSet.parse(
                t_children[0].get_attribute(T_ATTR) or ""
            ).min_version()
            lines: list[str] = []
            for t_child in t_children:
                timestamp = VersionSet.parse(t_child.get_attribute(T_ATTR) or "")
                if anchor in timestamp:
                    text = t_child.text_content()
                    lines.extend(text.split("\n") if text else [])
            content = lines_to_content(lines)
        else:
            content = t_children[0].children
        return attr_part + "".join(canonical_form(child) for child in content)

    def _is_frontier(self, path: Path) -> bool:
        if len(self.spec) == 0:
            return len(path) == 1
        return self.spec.is_frontier_path(path)

    # -- measures -----------------------------------------------------------------------

    def stats(self) -> ArchiveStats:
        return ArchiveStats(
            versions=self.version_count,
            nodes=self.root.node_count(),
            stored_timestamps=self.root.timestamp_count(),
            serialized_bytes=len(self.to_xml_string().encode("utf-8")),
        )


def _parse_history_path(path: str) -> list[tuple[str, KeyValue]]:
    """Parse ``/db/dept[name=finance]/emp[fn=John, ln=Doe]`` steps."""
    text = path.strip()
    if not text.startswith("/"):
        raise ArchiveError(f"History path must be absolute: {path!r}")
    steps: list[tuple[str, KeyValue]] = []
    for raw_step in _split_steps(text[1:]):
        bracket = raw_step.find("[")
        if bracket == -1:
            steps.append((raw_step, ()))
            continue
        if not raw_step.endswith("]"):
            raise ArchiveError(f"Malformed step {raw_step!r} in {path!r}")
        tag = raw_step[:bracket]
        inner = raw_step[bracket + 1 : -1]
        components: list[tuple[str, str]] = []
        for pair in inner.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ArchiveError(f"Malformed predicate {pair!r} in {path!r}")
            name, value = pair.split("=", 1)
            key_path = parse_path(name.strip())
            components.append((format_path(key_path, absolute=False), value.strip()))
        components.sort(key=lambda item: item[0])
        steps.append((tag, tuple(components)))
    return steps


def _split_steps(text: str) -> list[str]:
    """Split on ``/`` outside brackets (key values may contain ``/``)."""
    steps: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "/" and depth == 0:
            steps.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        steps.append("".join(current))
    return [step for step in steps if step]
