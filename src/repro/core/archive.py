"""The archive: merged versions in one keyed, timestamped hierarchy.

:class:`Archive` is the public facade over the whole pipeline of the
paper's Fig. 6: ``add_version`` annotates keys and runs Nested Merge;
``retrieve`` reconstructs any past version guided by the Sec. 7.1
timestamp trees; ``history`` returns the temporal history of a keyed
element; and ``to_xml_string`` / ``from_xml_string`` round-trip the
archive through the ``<T t="...">`` XML representation of Fig. 5 — "our
archive can be easily represented as yet another XML document".

Read-path caches.  The archive carries a **mutation counter** that
every ``add_version`` bumps; two caches key off it:

* **timestamp trees** (Sec. 7.1) — one binary tree per internal node,
  built lazily the first time a retrieval touches the node and *patched
  in place* (leaf timestamps recomputed, unions refreshed only along
  changed paths) when the counter moves, instead of being rebuilt;
* **child token lists** — each node's children sorted by label token,
  so ``history`` resolves a path step with one binary search instead of
  a linear label scan.

The same counter is what external indexes
(:class:`~repro.indexes.keyindex.KeyIndex`,
:class:`~repro.indexes.timestamp_tree.TimestampTreeIndex`) watch to
refresh themselves instead of silently serving a stale tree.

Retrieval shares frontier content copy-on-write style: the elements it
returns reference the archive's stored content nodes directly (the
merge never mutates stored content in place, so the shared subtrees are
stable), and a deep copy happens only when a caller that intends to
mutate asks for one with ``copy_content=True``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..keys.annotate import KeyLabel, KeyValue, annotate_keys, compute_key_value
from ..keys.paths import Path, format_path, parse_path, value_at
from ..keys.spec import KeySpec
from ..xmltree.canonical import canonical_form
from ..xmltree.model import Attribute, Element, Text
from ..xmltree.parser import parse_document
from ..xmltree.serializer import to_pretty_string, to_string
from .compaction import lines_to_content, weave_content_at
from .fingerprint import Fingerprinter
from .merge import MergeOptions, MergeStats, nested_merge
from .nodes import Alternative, ArchiveNode, Weave, WeaveSegment
from .tstree import (
    ProbeCount,
    TimestampTreeNode,
    build_timestamp_tree,
    patch_timestamp_tree,
    search_timestamp_tree,
    tree_size,
)
from .versionset import VersionSet

#: Tag of timestamp elements; the paper puts it in its own namespace.
T_TAG = "T"
#: Attribute carrying the interval-encoded timestamp on a T element.
T_ATTR = "t"
#: Tag of the synthetic root that tracks empty versions (Sec. 2).
ROOT_TAG = "root"
#: Attribute on the outermost ``<T>`` wrapper naming the frontier
#: storage form, so an archive file is self-describing; the two forms
#: share the ``<T>`` surface syntax and misreading one as the other
#: silently corrupts content.  Absent only in archives written by
#: older tools, which must pass matching options at load time.
STORAGE_ATTR = "storage"
#: The :data:`STORAGE_ATTR` value marking weave (compaction) storage.
STORAGE_WEAVE = "weave"
#: The :data:`STORAGE_ATTR` value marking per-timestamp alternatives.
STORAGE_ALTERNATIVES = "alternatives"


class ArchiveError(ValueError):
    """Raised on malformed archives or unusable queries."""


def missing_element_error(label, path: str) -> ArchiveError:
    """The error every read surface raises for a path that never existed.

    All backends (in-memory, chunked, external stream) and the key index
    raise this same message shape, so callers and tests can rely on one
    wording — "when did X first appear" on a non-existent X is a clear
    :class:`ArchiveError`, never a bare ``KeyError`` or assert.
    """
    return ArchiveError(
        f"No element {label} in the archive: {path!r} never existed"
    )


@dataclass
class ArchiveOptions:
    """Behavioural switches of the archiver.

    * ``fingerprinter`` — order/merge keyed siblings by fingerprints of
      their key values (Sec. 4.3).
    * ``compaction`` — store frontier content as an SCCS weave
      (*further compaction*, Example 4.3) instead of full alternatives.
      The two storage forms share the ``<T>`` surface syntax, so
      serialized archives carry a ``storage="weave"`` marker and
      :meth:`Archive.from_xml` restores the right form regardless of
      the options passed at load time.
    """

    fingerprinter: Optional[Fingerprinter] = None
    compaction: bool = False

    def merge_options(self) -> MergeOptions:
        return MergeOptions(
            fingerprinter=self.fingerprinter, compaction=self.compaction
        )


@dataclass
class ArchiveStats:
    """Size/shape counters of an archive.

    ``serialized_bytes`` and ``raw_bytes`` are the *logical*
    (uncompressed) serialization size; ``disk_bytes`` is what the
    storage backend actually keeps at rest — smaller under a
    compressing codec, equal otherwise (and for in-memory archives).
    ``generation`` is the backend's publication counter (+1 per WAL
    commit); 0 for in-memory archives and never-persisted stores.
    ``cache_hits``/``cache_misses`` count the reporting handle's
    decoded-chunk cache traffic and ``cache_evictions`` the
    process-wide cache's evictions; all stay 0 for in-memory archives
    and handles that don't cache reads.
    """

    versions: int
    nodes: int
    stored_timestamps: int
    serialized_bytes: int
    raw_bytes: int = 0
    disk_bytes: int = 0
    generation: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    @property
    def compression_ratio(self) -> float:
        """Logical bytes per at-rest byte (1.0 when nothing is stored)."""
        if self.disk_bytes <= 0:
            return 1.0
        return self.raw_bytes / self.disk_bytes


@dataclass
class ElementHistory:
    """Temporal history of one keyed element (Sec. 7.2).

    ``existence`` is the set of versions in which the element occurs.
    For frontier elements, ``changes`` lists ``(versions, content)``
    pairs: each distinct content value with the versions during which it
    was current — the "meaningful change description" the paper
    contrasts with diff scripts.
    """

    path: str
    existence: VersionSet
    changes: Optional[list[tuple[VersionSet, str]]] = None


@dataclass
class _CachedTree:
    """One node's timestamp tree plus the state it was patched against."""

    tree: Optional[TimestampTreeNode]
    child_count: int
    mutation: int


@dataclass
class _CachedTokens:
    """One node's children label tokens (sorted) plus cache freshness."""

    tokens: list[tuple]
    mutation: int


class Archive:
    """A merged, timestamped archive of document versions."""

    def __init__(self, spec: KeySpec, options: Optional[ArchiveOptions] = None) -> None:
        self.spec = spec
        self.options = options or ArchiveOptions()
        self.root = ArchiveNode(
            label=KeyLabel(tag=ROOT_TAG, key=()), timestamp=VersionSet()
        )
        self._mutations = 0
        self._trees: dict[int, _CachedTree] = {}
        self._child_tokens: dict[int, _CachedTokens] = {}

    # -- mutation tracking -------------------------------------------------

    @property
    def mutation_count(self) -> int:
        """Bumped by every version merge; read-path caches (here and in
        the external indexes) refresh themselves when it moves."""
        return self._mutations

    def note_mutation(self) -> None:
        """Declare an out-of-band mutation of the archive tree.

        ``add_version`` calls this itself; callers that reach into
        ``archive.root`` and edit nodes directly must call it so the
        timestamp-tree and token caches stop serving the old state.
        """
        self._mutations += 1

    def _root_timestamp(self) -> VersionSet:
        """The root timestamp, as a proper error instead of an assert
        (asserts vanish under ``python -O``, turning an empty-archive
        probe into an ``AttributeError``)."""
        timestamp = self.root.timestamp
        if timestamp is None:
            raise ArchiveError("Archive root carries no timestamp")
        return timestamp

    # -- versions ----------------------------------------------------------

    @property
    def last_version(self) -> int:
        """The highest archived version number (0 before any merge)."""
        timestamp = self._root_timestamp()
        if not timestamp:
            return 0
        return timestamp.max_version()

    @property
    def version_count(self) -> int:
        return len(self._root_timestamp())

    def add_version(self, document: Optional[Element], memo=None) -> MergeStats:
        """Archive the next version.

        ``document`` is the new version's root element; ``None`` records
        an *empty* version (the paper's Sec. 2: the root node's
        timestamp advances while the database node's does not).

        ``memo`` is a :class:`~repro.core.merge.MergeMemo` carried by a
        batched :class:`~repro.core.ingest.IngestSession`; unchanged
        keyed subtrees are then fingerprint-skipped instead of descended.
        """
        version = self.last_version + 1
        root_timestamp = self._root_timestamp()
        root_timestamp.add(version)
        self.note_mutation()
        if document is None:
            # Terminate timestamps of the document roots.
            inherited = root_timestamp
            for child in self.root.children:
                if child.timestamp is None:
                    child.timestamp = inherited.without(version)
            return MergeStats(versions=1)
        annotated = annotate_keys(document, self.spec)
        options = self.options.merge_options()
        if memo is not None:
            memo.prepare_version(annotated, options)
        stats = nested_merge(self.root, annotated, version, options, memo=memo)
        stats.versions = 1
        return stats

    def add_versions(
        self, documents: Iterable[Optional[Element]]
    ) -> MergeStats:
        """Archive a whole sequence of versions in one batched pass.

        Equivalent to calling :meth:`add_version` on each document in
        order — the resulting archive is identical — but a shared
        fingerprint memo skips merge descent into keyed subtrees that
        did not change between consecutive versions (Sec. 4.3 digests,
        memoized across the batch).  Returns cumulative
        :class:`MergeStats` whose skip counters record the saved work.
        """
        from .ingest import IngestSession

        return IngestSession(self).add_all(documents)

    # -- timestamp trees (Sec. 7.1, archive-resident) -----------------------

    def timestamp_tree(
        self, node: ArchiveNode, effective: VersionSet
    ) -> Optional[TimestampTreeNode]:
        """The (cached) timestamp tree over ``node``'s children.

        ``effective`` is the node's own effective timestamp — what its
        inheriting children resolve to.  Built on first use; when the
        mutation counter has moved since, the existing tree is patched
        in place (rebuilt only if the child list itself changed shape).
        """
        entry = self._trees.get(id(node))
        if entry is not None and entry.mutation == self._mutations:
            return entry.tree
        if entry is None or entry.child_count != len(node.children):
            tree = build_timestamp_tree(node.children, effective)
            self._trees[id(node)] = _CachedTree(
                tree=tree, child_count=len(node.children), mutation=self._mutations
            )
            return tree
        patch_timestamp_tree(entry.tree, node.children, effective)
        entry.mutation = self._mutations
        return entry.tree

    def relevant_children(
        self,
        node: ArchiveNode,
        version: int,
        effective: VersionSet,
        probes: Optional[ProbeCount] = None,
    ) -> list[int]:
        """Tree-guided: indexes of ``node``'s children alive at
        ``version``, probing the cached timestamp tree instead of every
        child (with the paper's ``2k`` fallback-to-scan threshold)."""
        return search_timestamp_tree(
            self.timestamp_tree(node, effective), version, len(node.children), probes
        )

    def warm_timestamp_trees(self) -> int:
        """Build (or patch) the timestamp tree of every internal node
        now instead of lazily; returns the total tree-node count — the
        structure's space cost."""
        total = 0
        root_timestamp = self._root_timestamp()
        stack: list[tuple[ArchiveNode, VersionSet]] = [(self.root, root_timestamp)]
        while stack:
            node, inherited = stack.pop()
            effective = node.effective_timestamp(inherited)
            total += tree_size(self.timestamp_tree(node, effective))
            for child in node.children:
                stack.append((child, effective))
        return total

    # -- retrieval (Sec. 7.1) ---------------------------------------------------

    def retrieve(
        self,
        version: int,
        *,
        guided: bool = True,
        copy_content: bool = False,
        probes: Optional[ProbeCount] = None,
    ) -> Optional[Element]:
        """Reconstruct version ``version``; ``None`` for an empty version.

        Keyed siblings come back in key order — the archive deliberately
        "ignores the order among elements with keys" (Sec. 2).

        ``guided`` selects the timestamp-tree fast path (the default);
        ``guided=False`` is the reference scan over every child, kept
        for equivalence testing and benchmarking.  ``probes`` collects
        probe counts when supplied.  The result shares frontier content
        with the archive unless ``copy_content=True`` (see the module
        docstring).
        """
        root_timestamp = self._root_timestamp()
        if version not in root_timestamp:
            raise ArchiveError(
                f"Version {version} is not in the archive "
                f"(have {root_timestamp.to_text() or 'none'})"
            )
        for child in self._select_children(
            self.root, version, root_timestamp, guided, probes
        ):
            rebuilt = self._reconstruct(
                child, version, root_timestamp, guided, copy_content, probes
            )
            if rebuilt is not None:
                return rebuilt
        return None

    def _select_children(
        self,
        node: ArchiveNode,
        version: int,
        effective: VersionSet,
        guided: bool,
        probes: Optional[ProbeCount],
    ) -> Iterator[ArchiveNode]:
        if guided:
            for index in self.relevant_children(node, version, effective, probes):
                yield node.children[index]
            return
        for child in node.children:
            if probes is not None:
                probes.fallback_scans += 1
            if version in child.effective_timestamp(effective):
                yield child

    def _reconstruct(
        self,
        node: ArchiveNode,
        version: int,
        inherited: VersionSet,
        guided: bool = False,
        copy_content: bool = True,
        probes: Optional[ProbeCount] = None,
    ) -> Optional[Element]:
        timestamp = node.effective_timestamp(inherited)
        if version not in timestamp:
            return None
        element = Element(node.label.tag)
        for name, value in node.attributes:
            element.set_attribute(name, value)
        if node.weave is not None:
            for content in weave_content_at(node.weave, version):
                element.append(content)
            return element
        if node.alternatives is not None:
            alternative = node.alternative_at(version)
            if alternative is not None:
                if copy_content:
                    for content in alternative.content:
                        element.append(content.copy())
                else:
                    # Copy-on-write share: stored content is stable
                    # (merges append alternatives, never edit them),
                    # so the nodes are referenced, not deep-copied.
                    element.children.extend(alternative.content)
            return element
        for child in self._select_children(node, version, timestamp, guided, probes):
            rebuilt = self._reconstruct(
                child, version, timestamp, guided, copy_content, probes
            )
            if rebuilt is not None:
                element.append(rebuilt)
        return element

    def reconstruct_node(
        self,
        node: ArchiveNode,
        version: int,
        inherited: VersionSet,
        *,
        copy_content: bool = False,
        probes: Optional[ProbeCount] = None,
    ) -> Optional[Element]:
        """Materialize one archive subtree at ``version``, tree-guided.

        The public entry the query executor uses to materialize only the
        nodes a plan selects (instead of the whole snapshot
        :meth:`retrieve` builds).  ``inherited`` is the timestamp the
        node's parent resolves to; returns ``None`` when the node is not
        alive at ``version``.  Content is shared copy-on-write like
        :meth:`retrieve` unless ``copy_content=True``.
        """
        return self._reconstruct(
            node, version, inherited, guided=True,
            copy_content=copy_content, probes=probes,
        )

    def scan_probe_count(self, version: int) -> int:
        """Membership probes a scan-all-children retrieval makes — the
        baseline the timestamp trees are measured against."""
        root_timestamp = self._root_timestamp()
        count = 0
        stack: list[tuple[ArchiveNode, VersionSet]] = [(self.root, root_timestamp)]
        while stack:
            node, inherited = stack.pop()
            timestamp = node.effective_timestamp(inherited)
            count += len(node.children)
            for child in node.children:
                if version in child.effective_timestamp(timestamp):
                    stack.append((child, timestamp))
        return count

    # -- keyed-path lookup -------------------------------------------------------

    def find_child(
        self, node: ArchiveNode, label: KeyLabel
    ) -> Optional[ArchiveNode]:
        """Child lookup by label via binary search over the cached,
        token-sorted child list (the merge keeps children sorted by the
        archive's sort token).  Falls back over equal-token runs so
        colliding fingerprint tokens stay correct."""
        entry = self._child_tokens.get(id(node))
        if entry is None or entry.mutation != self._mutations:
            token = self.options.merge_options().sort_token()
            entry = _CachedTokens(
                tokens=[token(child.label) for child in node.children],
                mutation=self._mutations,
            )
            self._child_tokens[id(node)] = entry
        target = self.options.merge_options().sort_token()(label)
        position = bisect.bisect_left(entry.tokens, target)
        while position < len(entry.tokens) and entry.tokens[position] == target:
            child = node.children[position]
            if child.label == label:
                return child
            position += 1
        return None

    # -- temporal history (Sec. 7.2) ----------------------------------------------

    def history(self, path: str) -> ElementHistory:
        """History of the element at a keyed path.

        Path syntax matches the paper's examples:
        ``/db/dept[name=finance]/emp[fn=John, ln=Doe]`` — each step is a
        tag plus the key-path/value pairs identifying the node among its
        siblings.  Steps with singleton keys take no predicate
        (``/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal``).
        """
        steps = _parse_history_path(path)
        node = self.root
        inherited = self._root_timestamp()
        for tag, key_value in steps:
            label = KeyLabel(tag=tag, key=key_value)
            child = self.find_child(node, label)
            if child is None:
                raise missing_element_error(label, path)
            inherited = child.effective_timestamp(inherited)
            node = child
        return ElementHistory(
            path=path,
            existence=inherited.copy(),
            changes=self._content_changes(node, inherited),
        )

    @staticmethod
    def _content_changes(
        node: ArchiveNode, existence: VersionSet
    ) -> Optional[list[tuple[VersionSet, str]]]:
        if node.alternatives is not None:
            changes = []
            for alternative in node.alternatives:
                timestamp = (
                    alternative.timestamp.copy()
                    if alternative.timestamp is not None
                    else existence.copy()
                )
                rendered = "".join(
                    to_string(c) if isinstance(c, Element) else c.text
                    for c in alternative.content
                )
                changes.append((timestamp, rendered))
            return changes
        if node.weave is not None:
            return Archive._weave_changes(node.weave, existence)
        return None

    @staticmethod
    def _weave_changes(
        weave: Weave, existence: VersionSet
    ) -> list[tuple[VersionSet, str]]:
        """Content runs of a woven frontier node.

        The visible line set only changes where some segment's timestamp
        has an interval boundary, so the weave is rendered once per
        constant-content run instead of once per version — linear in
        runs and segments rather than in the number of versions.
        """
        changes: list[tuple[VersionSet, str]] = []
        if not existence:
            return changes
        boundaries: set[int] = set()
        for segment in weave.segments:
            for lo, hi in segment.timestamp.intervals():
                boundaries.add(lo)
                boundaries.add(hi + 1)
        previous: Optional[str] = None
        run: Optional[VersionSet] = None
        for lo, hi in existence.intervals():
            cuts = sorted(point for point in boundaries if lo < point <= hi)
            starts = [lo] + cuts
            ends = cuts + [hi + 1]
            for start, stop in zip(starts, ends):
                rendered = "\n".join(weave.lines_at(start))
                if rendered == previous and run is not None:
                    run.add_range(start, stop - 1)
                else:
                    if run is not None and previous is not None:
                        changes.append((run, previous))
                    run = VersionSet.from_intervals([(start, stop - 1)])
                    previous = rendered
        if run is not None and previous is not None:
            changes.append((run, previous))
        return changes

    # -- XML representation (Fig. 5) -------------------------------------------------

    def to_xml(self) -> Element:
        """The archive as an XML element tree (Fig. 5)."""
        wrapper = Element(T_TAG)
        wrapper.set_attribute(T_ATTR, self._root_timestamp().to_text())
        wrapper.set_attribute(
            STORAGE_ATTR,
            STORAGE_WEAVE if self.options.compaction else STORAGE_ALTERNATIVES,
        )
        root_element = wrapper.append(Element(ROOT_TAG))
        for child in self.root.children:
            self._emit(child, root_element)
        return wrapper

    def to_xml_string(self, pretty: bool = True) -> str:
        xml = self.to_xml()
        return to_pretty_string(xml) if pretty else to_string(xml)

    def _emit(self, node: ArchiveNode, parent: Element) -> None:
        element = Element(node.label.tag)
        for name, value in node.attributes:
            element.set_attribute(name, value)
        if node.timestamp is not None:
            wrapper = Element(T_TAG)
            wrapper.set_attribute(T_ATTR, node.timestamp.to_text())
            wrapper.append(element)
            parent.append(wrapper)
        else:
            parent.append(element)
        if node.weave is not None:
            for segment in node.weave.segments:
                t_node = Element(T_TAG)
                t_node.set_attribute(T_ATTR, segment.timestamp.to_text())
                t_node.append(Text("\n".join(segment.lines)))
                element.append(t_node)
            return
        if node.alternatives is not None:
            if len(node.alternatives) == 1 and node.alternatives[0].timestamp is None:
                for content in node.alternatives[0].content:
                    element.append(content.copy())
            else:
                for alternative in node.alternatives:
                    assert alternative.timestamp is not None
                    t_node = Element(T_TAG)
                    t_node.set_attribute(T_ATTR, alternative.timestamp.to_text())
                    for content in alternative.content:
                        t_node.append(content.copy())
                    element.append(t_node)
            return
        for child in node.children:
            self._emit(child, element)

    # -- parsing the XML representation back ---------------------------------------------

    @classmethod
    def from_xml_string(
        cls,
        text: str,
        spec: KeySpec,
        options: Optional[ArchiveOptions] = None,
    ) -> "Archive":
        """Parse an archive previously written by :meth:`to_xml_string`.

        The frontier storage form is read from the archive's own
        ``storage`` marker, so weave and alternatives archives both
        load correctly whatever ``options`` says; ``options`` supplies
        the remaining switches (and the storage form for marker-less
        archives written by older tools).
        """
        return cls.from_xml(parse_document(text), spec, options)

    @classmethod
    def from_xml(
        cls,
        xml: Element,
        spec: KeySpec,
        options: Optional[ArchiveOptions] = None,
    ) -> "Archive":
        archive = cls(spec, options)
        if xml.tag != T_TAG or xml.get_attribute(T_ATTR) is None:
            raise ArchiveError("Archive XML must start with a <T t='...'> wrapper")
        marker = xml.get_attribute(STORAGE_ATTR)
        if marker is not None:
            if marker not in (STORAGE_WEAVE, STORAGE_ALTERNATIVES):
                raise ArchiveError(f"Unknown archive storage form {marker!r}")
            compaction = marker == STORAGE_WEAVE
            if compaction != archive.options.compaction:
                # The file knows its own storage form; never mutate the
                # caller's (possibly shared) options object.
                archive.options = ArchiveOptions(
                    fingerprinter=archive.options.fingerprinter,
                    compaction=compaction,
                )
        timestamp_text = xml.get_attribute(T_ATTR) or ""
        archive.root.timestamp = VersionSet.parse(timestamp_text)
        root_element = xml.find(ROOT_TAG)
        if root_element is None:
            raise ArchiveError(f"Archive XML lacks the <{ROOT_TAG}> element")
        for child in root_element.children:
            archive._read_top(child)
        token = archive.options.merge_options().sort_token()
        archive.root.children.sort(key=lambda c: token(c.label))
        return archive

    def _read_top(self, child) -> None:
        if isinstance(child, Text):
            if child.text.strip():
                raise ArchiveError("Stray text directly under the archive root")
            return
        if child.tag == T_TAG:
            timestamp = VersionSet.parse(child.get_attribute(T_ATTR) or "")
            for grandchild in child.element_children():
                self.root.children.append(
                    self._read_node(grandchild, timestamp.copy(), (grandchild.tag,))
                )
        else:
            self.root.children.append(self._read_node(child, None, (child.tag,)))

    def _read_node(
        self, element: Element, timestamp: Optional[VersionSet], path: Path
    ) -> ArchiveNode:
        label = self._label_for(element, path)
        node = ArchiveNode(
            label=label,
            timestamp=timestamp,
            attributes=tuple(
                sorted((attr.name, attr.value) for attr in element.attributes)
            ),
        )
        if self._is_frontier(path):
            self._read_frontier_content(element, node)
            return node
        token = self.options.merge_options().sort_token()
        for child in element.children:
            if isinstance(child, Text):
                if child.text.strip():
                    raise ArchiveError(
                        f"Text above the frontier in archive at {format_path(path)}"
                    )
                continue
            if child.tag == T_TAG:
                child_timestamp = VersionSet.parse(child.get_attribute(T_ATTR) or "")
                for grandchild in child.element_children():
                    node.children.append(
                        self._read_node(
                            grandchild,
                            child_timestamp.copy(),
                            path + (grandchild.tag,),
                        )
                    )
            else:
                node.children.append(self._read_node(child, None, path + (child.tag,)))
        node.children.sort(key=lambda c: token(c.label))
        return node

    def _read_frontier_content(self, element: Element, node: ArchiveNode) -> None:
        t_children = [
            child
            for child in element.element_children()
            if child.tag == T_TAG and child.get_attribute(T_ATTR) is not None
        ]
        if self.options.compaction:
            segments = []
            for t_child in t_children:
                lines_text = t_child.text_content()
                segments.append(
                    WeaveSegment(
                        timestamp=VersionSet.parse(t_child.get_attribute(T_ATTR) or ""),
                        lines=lines_text.split("\n") if lines_text else [],
                    )
                )
            node.weave = Weave(segments=segments)
            return
        if t_children:
            node.alternatives = [
                Alternative(
                    timestamp=VersionSet.parse(t_child.get_attribute(T_ATTR) or ""),
                    content=[c.copy() for c in t_child.children],
                )
                for t_child in t_children
            ]
        else:
            node.alternatives = [
                Alternative(
                    timestamp=None, content=[c.copy() for c in element.children]
                )
            ]

    def _label_for(self, element: Element, path: Path) -> KeyLabel:
        if len(self.spec) == 0:
            return KeyLabel(tag=element.tag, key=())
        key = self.spec.key_for(path)
        if key is None:
            raise ArchiveError(
                f"Archive element at {format_path(path)} is not keyed by the spec"
            )
        return KeyLabel(
            tag=element.tag,
            key=compute_key_value(element, key, value_of=self._archived_value_at),
        )

    def _archived_value_at(self, target) -> str:
        """``value_at`` over the Fig. 5 encoding.

        In the serialized archive a key target is a frontier element
        whose content may be wrapped in ``<T t="...">`` nodes —
        per-timestamp alternatives, or weave segments under compaction.
        Key values are stable over a node's lifetime (they define its
        identity), so decoding any one stored state yields *the* logical
        value; labels then match the ones live documents annotate to.
        """
        if isinstance(target, Attribute):
            return target.value
        t_children = [
            child
            for child in target.element_children()
            if child.tag == T_TAG and child.get_attribute(T_ATTR) is not None
        ]
        if not t_children:
            return value_at(target)
        attr_part = "".join(
            f'@{attr.name}="{attr.value}"'
            for attr in sorted(target.attributes, key=lambda a: a.name)
        )
        if self.options.compaction:
            # Reassemble the content visible at the first archived state:
            # every segment whose timestamp covers the anchor version.
            anchor = VersionSet.parse(
                t_children[0].get_attribute(T_ATTR) or ""
            ).min_version()
            lines: list[str] = []
            for t_child in t_children:
                timestamp = VersionSet.parse(t_child.get_attribute(T_ATTR) or "")
                if anchor in timestamp:
                    text = t_child.text_content()
                    lines.extend(text.split("\n") if text else [])
            content = lines_to_content(lines)
        else:
            content = t_children[0].children
        return attr_part + "".join(canonical_form(child) for child in content)

    def _is_frontier(self, path: Path) -> bool:
        if len(self.spec) == 0:
            return len(path) == 1
        return self.spec.is_frontier_path(path)

    # -- measures -----------------------------------------------------------------------

    def stats(self) -> ArchiveStats:
        serialized = len(self.to_xml_string().encode("utf-8"))
        return ArchiveStats(
            versions=self.version_count,
            nodes=self.root.node_count(),
            stored_timestamps=self.root.timestamp_count(),
            serialized_bytes=serialized,
            # In memory there is no at-rest encoding: disk mirrors raw.
            raw_bytes=serialized,
            disk_bytes=serialized,
        )


def _parse_history_path(path: str) -> list[tuple[str, KeyValue]]:
    """Parse ``/db/dept[name=finance]/emp[fn=John, ln=Doe]`` steps."""
    text = path.strip()
    if not text.startswith("/"):
        raise ArchiveError(f"History path must be absolute: {path!r}")
    steps: list[tuple[str, KeyValue]] = []
    for raw_step in _split_steps(text[1:]):
        bracket = raw_step.find("[")
        if bracket == -1:
            steps.append((raw_step, ()))
            continue
        if not raw_step.endswith("]"):
            raise ArchiveError(f"Malformed step {raw_step!r} in {path!r}")
        tag = raw_step[:bracket]
        inner = raw_step[bracket + 1 : -1]
        components: list[tuple[str, str]] = []
        for pair in inner.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ArchiveError(f"Malformed predicate {pair!r} in {path!r}")
            name, value = pair.split("=", 1)
            key_path = parse_path(name.strip())
            components.append((format_path(key_path, absolute=False), value.strip()))
        components.sort(key=lambda item: item[0])
        steps.append((tag, tuple(components)))
    return steps


def _split_steps(text: str) -> list[str]:
    """Split on ``/`` outside brackets (key values may contain ``/``)."""
    steps: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "/" and depth == 0:
            steps.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        steps.append("".join(current))
    return [step for step in steps if step]
