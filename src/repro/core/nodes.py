"""In-memory representation of an archive (Sec. 2, Fig. 4).

An archive is a tree of :class:`ArchiveNode` — keyed nodes annotated
with key values and timestamps.  A node whose ``timestamp`` is ``None``
inherits its parent's (the paper's timestamp inheritance).  *Frontier*
nodes (the deepest keyed nodes) do not have keyed children; their
content is stored either as

* a list of :class:`Alternative` — each a full copy of the node's
  content labelled with the versions during which it was current (plain
  Nested Merge; Fig. 4 stores John Doe's two salaries this way), or
* a :class:`Weave` — an SCCS-style line weave produced by *further
  compaction* (Example 4.3), where unchanged lines are shared between
  versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..keys.annotate import KeyLabel
from ..xmltree.model import Element, Text
from .versionset import VersionSet

ContentNode = Union[Element, Text]


@dataclass
class Alternative:
    """One value of a frontier node's content over a span of versions.

    ``timestamp is None`` is the single-alternative state — the content
    has been identical for the node's whole lifetime and inherits the
    node's timestamp ("every node in children(x) is not a timestamp
    node" in the paper's algorithm).
    """

    timestamp: Optional[VersionSet]
    content: list[ContentNode]


@dataclass
class WeaveSegment:
    """A run of consecutive content lines sharing one timestamp."""

    timestamp: VersionSet
    lines: list[str]


@dataclass
class Weave:
    """SCCS-style woven content of a frontier node (further compaction)."""

    segments: list[WeaveSegment] = field(default_factory=list)

    def lines_at(self, version: int) -> list[str]:
        """The content lines visible at ``version``."""
        lines: list[str] = []
        for segment in self.segments:
            if version in segment.timestamp:
                lines.extend(segment.lines)
        return lines

    def line_count(self) -> int:
        return sum(len(segment.lines) for segment in self.segments)


@dataclass
class ArchiveNode:
    """A keyed node of the archive.

    ``attributes`` holds the element's A-children as sorted
    ``(name, value)`` pairs.  The archiver requires them to be *stable*
    while the node lives: in well-keyed data attributes are key values
    (the paper's experimental specs key XMark items by their ``id``
    attribute), and the paper's merge assumes elements "do not contain
    attributes" beyond that.  A mutable attribute must be modelled as a
    keyed child element instead; Nested Merge raises otherwise.
    """

    label: KeyLabel
    timestamp: Optional[VersionSet] = None
    attributes: tuple[tuple[str, str], ...] = ()
    children: list["ArchiveNode"] = field(default_factory=list)
    alternatives: Optional[list[Alternative]] = None
    weave: Optional[Weave] = None

    @property
    def is_frontier(self) -> bool:
        return self.alternatives is not None or self.weave is not None

    def content_uniform(self) -> bool:
        """``True`` when this frontier node stores no explicit content
        timestamps: a single untimestamped alternative (the content has
        been identical for the node's whole lifetime) or an empty weave.
        Such content inherits the node's timestamp wholesale, so a merge
        of identical content is a no-op below the node."""
        if self.alternatives is not None:
            return len(self.alternatives) == 1 and self.alternatives[0].timestamp is None
        if self.weave is not None:
            return not self.weave.segments
        return False

    def subtree_uniform(self) -> bool:
        """``True`` when no node strictly below carries an explicit
        timestamp and every frontier node at or below stores uniform
        content — the precondition for skip-merging this subtree: the
        only state a merge of an unchanged version would touch is this
        node's own timestamp."""
        if self.is_frontier:
            return self.content_uniform()
        stack = list(self.children)
        while stack:
            node = stack.pop()
            if node.timestamp is not None:
                return False
            if node.is_frontier:
                if not node.content_uniform():
                    return False
                continue
            stack.extend(node.children)
        return True

    def effective_timestamp(self, inherited: VersionSet) -> VersionSet:
        """This node's timestamp, inheriting from the parent when absent."""
        return self.timestamp if self.timestamp is not None else inherited

    def alternative_at(self, version: int) -> Optional[Alternative]:
        """The stored alternative whose content is current at ``version``
        (``None`` for weave nodes, internal nodes, or dead versions).
        An untimestamped alternative inherits the node's timestamp, so
        it answers for every version the node lives through."""
        if self.alternatives is None:
            return None
        for alternative in self.alternatives:
            if alternative.timestamp is None or version in alternative.timestamp:
                return alternative
        return None

    def exists_at(self, version: int, inherited: VersionSet) -> bool:
        return version in self.effective_timestamp(inherited)

    def find_child(self, label: KeyLabel) -> Optional["ArchiveNode"]:
        """Linear-scan lookup of a child by label (index-free path)."""
        for child in self.children:
            if child.label == label:
                return child
        return None

    def node_count(self) -> int:
        """Number of archive nodes in this subtree (frontier content
        counts the nodes of every stored alternative)."""
        count = 1
        for child in self.children:
            count += child.node_count()
        if self.alternatives:
            for alternative in self.alternatives:
                for item in alternative.content:
                    if isinstance(item, Element):
                        count += sum(1 for _ in item.iter())
                    else:
                        count += 1
        return count

    def timestamp_count(self) -> int:
        """Number of explicitly stored (non-inherited) timestamps."""
        count = 1 if self.timestamp is not None else 0
        for child in self.children:
            count += child.timestamp_count()
        if self.alternatives:
            count += sum(
                1 for alternative in self.alternatives if alternative.timestamp is not None
            )
        if self.weave:
            count += len(self.weave.segments)
        return count
