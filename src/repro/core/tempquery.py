"""Temporal queries over archives: semantic change reports.

The introduction's motivating complaint (Fig. 1) is that minimum-edit
diffs produce *nonsensical* change descriptions — genes swapping ids —
whereas a key-based archive can say what actually happened to each
element.  This module produces such descriptions:

* :func:`archive_diff` — the changes between two archived versions,
  grouped by element: added, deleted, and content-changed, each
  identified by its key path;
* :func:`keyed_diff` — the same report computed directly from two
  documents (the DeltaXML-style keyed comparison of Sec. 8);
* :func:`first_appearance` / :func:`last_change` — the queries of the
  introduction ("to find when a given observation first appeared ...
  or when it was last changed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..keys.spec import KeySpec
from ..xmltree.canonical import canonical_form
from ..xmltree.model import Element
from .archive import Archive, ArchiveError
from .nodes import ArchiveNode
from .versionset import VersionSet


@dataclass
class Change:
    """One element-level change between two versions."""

    kind: str  # 'added', 'deleted' or 'changed'
    path: str  # key path of the element, e.g. /db/dept[name=finance]
    old_content: Optional[str] = None  # for 'changed': canonical before
    new_content: Optional[str] = None  # for 'changed': canonical after

    def __str__(self) -> str:
        if self.kind == "changed":
            return f"changed {self.path}: {self.old_content!r} -> {self.new_content!r}"
        return f"{self.kind} {self.path}"

@dataclass
class ChangeReport:
    """All element-level changes between two versions."""

    from_version: int
    to_version: int
    changes: list[Change] = field(default_factory=list)

    def added(self) -> list[Change]:
        return [c for c in self.changes if c.kind == "added"]

    def deleted(self) -> list[Change]:
        return [c for c in self.changes if c.kind == "deleted"]

    def changed(self) -> list[Change]:
        return [c for c in self.changes if c.kind == "changed"]

    def __len__(self) -> int:
        return len(self.changes)

    def __str__(self) -> str:
        header = f"changes {self.from_version} -> {self.to_version}:"
        if not self.changes:
            return header + " none"
        return "\n".join([header] + [f"  {change}" for change in self.changes])

def _step(node: ArchiveNode) -> str:
    label = node.label
    if not label.key:
        return label.tag
    inner = ", ".join(f"{path}={value}" for path, value in label.key)
    return f"{label.tag}[{inner}]"

def _relevant_union(
    archive: Archive,
    node: ArchiveNode,
    effective: VersionSet,
    from_version: int,
    to_version: int,
) -> list[int]:
    """Sorted union of the child indexes alive at either version,
    probed through the archive's timestamp trees so children relevant
    to neither version are pruned without touching them."""
    old_indexes = archive.relevant_children(node, from_version, effective)
    new_indexes = archive.relevant_children(node, to_version, effective)
    return sorted(set(old_indexes) | set(new_indexes))

def archive_diff(archive: Archive, from_version: int, to_version: int) -> ChangeReport:
    """Element-level changes between two archived versions.

    Walks the merged hierarchy once, guided by the archive's timestamp
    trees: at every internal node only the children alive at either
    endpoint version are descended, so the walk's cost tracks the two
    versions' footprint rather than the whole accreted archive.  An
    element is *added* when its timestamp contains ``to_version`` but
    not ``from_version``, *deleted* in the converse case, and *changed*
    when it is a frontier node alive in both versions with different
    content.  Subtrees of added/deleted elements are reported as one
    change (the element itself), matching how a curator thinks about it.
    """
    root_timestamp = archive.root.timestamp
    if root_timestamp is None:
        raise ArchiveError("Archive root carries no timestamp")
    for version in (from_version, to_version):
        if version not in root_timestamp:
            raise ArchiveError(f"Version {version} is not in the archive")
    report = ChangeReport(from_version=from_version, to_version=to_version)

    def walk(node: ArchiveNode, inherited: VersionSet, prefix: str) -> None:
        timestamp = node.effective_timestamp(inherited)
        here = f"{prefix}/{_step(node)}"
        in_old = from_version in timestamp
        in_new = to_version in timestamp
        if not in_old and not in_new:
            return
        if in_old != in_new:
            report.changes.append(
                Change(kind="added" if in_new else "deleted", path=here)
            )
            return
        if node.alternatives is not None:
            old_content = _frontier_content(node, from_version)
            new_content = _frontier_content(node, to_version)
            if old_content != new_content:
                report.changes.append(
                    Change(
                        kind="changed",
                        path=here,
                        old_content=old_content,
                        new_content=new_content,
                    )
                )
            return
        if node.weave is not None:
            old_lines = "\n".join(node.weave.lines_at(from_version))
            new_lines = "\n".join(node.weave.lines_at(to_version))
            if old_lines != new_lines:
                report.changes.append(
                    Change(
                        kind="changed",
                        path=here,
                        old_content=old_lines,
                        new_content=new_lines,
                    )
                )
            return
        for index in _relevant_union(
            archive, node, timestamp, from_version, to_version
        ):
            walk(node.children[index], timestamp, here)

    for index in _relevant_union(
        archive, archive.root, root_timestamp, from_version, to_version
    ):
        walk(archive.root.children[index], root_timestamp, "")
    return report

def _frontier_content(node: ArchiveNode, version: int) -> Optional[str]:
    alternative = node.alternative_at(version)
    if alternative is None:
        return None
    return "".join(canonical_form(c) for c in alternative.content)

def keyed_diff(
    old: Element, new: Element, spec: KeySpec
) -> ChangeReport:
    """Keyed comparison of two documents (the DeltaXML idea, Sec. 8).

    Rather than minimizing edit distance, elements are matched by key:
    the report never says "gene 6230 renamed itself to 2953" (Fig. 1's
    nonsense); it says the sequence of gene 6230 changed.
    """
    archive = Archive(spec)
    archive.add_version(old.copy())
    archive.add_version(new.copy())
    report = archive_diff(archive, 1, 2)
    report.from_version = 1
    report.to_version = 2
    return report

def first_appearance(archive: Archive, path: str) -> int:
    """The version in which the element at ``path`` first existed.

    .. deprecated:: use ``repro.open(archive).first_appearance(path)``
       — this is now a thin shim over the :class:`ArchiveDB` facade,
       which answers through the key index and raises a clear
       :class:`ArchiveError` for paths that never existed.
    """
    import warnings

    warnings.warn(
        "tempquery.first_appearance is deprecated; use "
        "repro.open(...).first_appearance(path)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..query.db import ArchiveDB  # local: the facade builds on core

    return ArchiveDB(archive).first_appearance(path)

def last_change(archive: Archive, path: str) -> int:
    """The version in which the element's content last changed.

    .. deprecated:: use ``repro.open(archive).last_change(path)`` —
       this is now a thin shim over the :class:`ArchiveDB` facade.
    """
    import warnings

    warnings.warn(
        "tempquery.last_change is deprecated; use "
        "repro.open(...).last_change(path)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..query.db import ArchiveDB  # local: the facade builds on core

    return ArchiveDB(archive).last_change(path)
