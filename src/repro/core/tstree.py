"""Timestamp trees for version retrieval (Sec. 7.1) — core machinery.

For an archive node with ``k`` children, a binary tree over the
children's timestamps directs retrieval of version ``i`` to the ``α``
children that actually contain ``i`` while probing at most
``2α - 1 + 2α·log(k/α)`` tree nodes — or at most ``2k``, at which point
the search falls back to scanning all leaves, exactly the threshold
rule of the paper.

This module holds the tree structure plus the build/patch/search
primitives; :class:`repro.core.archive.Archive` owns a lazily-built
cache of these trees keyed by its mutation counter, and
:class:`repro.indexes.timestamp_tree.TimestampTreeIndex` wraps that
cache with probe accounting for the Sec. 7.1 experiments.

``patch_timestamp_tree`` is what makes the trees cheap to keep current:
after a merge lands another version, leaf timestamps are recomputed in
place and internal unions are refreshed only along paths whose leaves
actually changed — no reallocation, no rebuild, and subtrees the merge
never touched are compared (cheaply, interval list against interval
list) and left alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .nodes import ArchiveNode
from .versionset import VersionSet


@dataclass
class TimestampTreeNode:
    """One node of a timestamp binary tree."""

    timestamp: VersionSet
    left: Optional["TimestampTreeNode"] = None
    right: Optional["TimestampTreeNode"] = None
    child_index: Optional[int] = None  # set on leaves: offset into children

    @property
    def is_leaf(self) -> bool:
        return self.child_index is not None


@dataclass
class ProbeCount:
    """Probe accounting for the retrieval cost analysis."""

    tree_probes: int = 0
    fallback_scans: int = 0

    def total(self) -> int:
        return self.tree_probes + self.fallback_scans

    def merge(self, other: "ProbeCount") -> None:
        self.tree_probes += other.tree_probes
        self.fallback_scans += other.fallback_scans


def build_timestamp_tree(
    children: list[ArchiveNode], inherited: VersionSet
) -> Optional[TimestampTreeNode]:
    """Bottom-up pairing of leaves into a binary tree (Sec. 7.1)."""
    if not children:
        return None
    level: list[TimestampTreeNode] = [
        TimestampTreeNode(
            timestamp=child.effective_timestamp(inherited).copy(), child_index=index
        )
        for index, child in enumerate(children)
    ]
    while len(level) > 1:
        paired: list[TimestampTreeNode] = []
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            paired.append(
                TimestampTreeNode(
                    timestamp=left.timestamp.union(right.timestamp),
                    left=left,
                    right=right,
                )
            )
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def patch_timestamp_tree(
    tree: Optional[TimestampTreeNode],
    children: list[ArchiveNode],
    inherited: VersionSet,
) -> bool:
    """Refresh a tree in place after the children's timestamps moved.

    Leaves are recomputed against the children's current effective
    timestamps; an internal node re-unions only when a leaf below it
    actually changed.  The caller guarantees the child *list* is the one
    the tree was built over (same length, same order) — a structural
    change requires :func:`build_timestamp_tree` instead.  Returns
    whether this node's timestamp changed.
    """
    if tree is None:
        return False
    if tree.is_leaf:
        assert tree.child_index is not None
        current = children[tree.child_index].effective_timestamp(inherited)
        if tree.timestamp == current:
            return False
        tree.timestamp = current.copy()
        return True
    left_changed = patch_timestamp_tree(tree.left, children, inherited)
    right_changed = patch_timestamp_tree(tree.right, children, inherited)
    if not (left_changed or right_changed):
        return False
    assert tree.left is not None
    refreshed = (
        tree.left.timestamp.union(tree.right.timestamp)
        if tree.right is not None
        else tree.left.timestamp.copy()
    )
    if refreshed == tree.timestamp:
        return False
    tree.timestamp = refreshed
    return True


def search_timestamp_tree(
    tree: Optional[TimestampTreeNode],
    version: int,
    child_count: int,
    probes: Optional[ProbeCount] = None,
) -> list[int]:
    """Indexes of children relevant to ``version``.

    Descends the tree counting probes; once ``2k`` tree nodes have been
    probed the remaining work cannot beat a plain scan, so the search
    falls back to scanning all leaves (the paper's threshold rule).
    """
    if tree is None:
        return []
    probes = probes if probes is not None else ProbeCount()
    budget = 2 * child_count
    # Budget against probes spent in THIS search: ``probes`` may be a
    # cumulative counter shared across a whole reconstruction, and
    # comparing the running total against one node's budget would make
    # every deep node spuriously fall back to a leaf scan.
    spent = 0
    result: list[int] = []
    stack = [tree]
    while stack:
        node = stack.pop()
        spent += 1
        probes.tree_probes += 1
        if spent > budget:
            # Fall back: scan every leaf once.
            result = _scan_leaves(tree, version, probes)
            return sorted(result)
        if version not in node.timestamp:
            continue
        if node.is_leaf:
            assert node.child_index is not None
            result.append(node.child_index)
        else:
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)
    return sorted(result)


def _scan_leaves(
    tree: TimestampTreeNode, version: int, probes: ProbeCount
) -> list[int]:
    result: list[int] = []
    stack = [tree]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            probes.fallback_scans += 1
            if version in node.timestamp:
                assert node.child_index is not None
                result.append(node.child_index)
            continue
        if node.right is not None:
            stack.append(node.right)
        if node.left is not None:
            stack.append(node.left)
    return result


def tree_size(tree: Optional[TimestampTreeNode]) -> int:
    """Number of nodes in one tree (space accounting)."""
    count = 0
    stack = [tree] if tree is not None else []
    while stack:
        node = stack.pop()
        count += 1
        if node.left is not None:
            stack.append(node.left)
        if node.right is not None:
            stack.append(node.right)
    return count
