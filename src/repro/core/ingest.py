"""Batched multi-version ingestion (the paper's headline workload).

The paper archives *long sequences* of versions — hundreds of OMIM or
Swiss-Prot snapshots — yet a naive loop over ``Archive.add_version``
re-walks the full archive per version even when the delta is tiny.
:class:`IngestSession` holds a :class:`~repro.core.merge.MergeMemo`
across the versions of a batch: subtree fingerprints (Sec. 4.3 digests
over canonical forms) computed while merging version ``i`` let the
merge of version ``i+1`` skip descent into every keyed subtree that did
not change, so per-version cost tracks the delta instead of the archive
size.

Usage::

    session = IngestSession(archive)
    for document in documents:
        session.add(document)          # per-version MergeStats
    session.stats                      # batch totals with skip counters

or, equivalently, ``archive.add_versions(documents)``.

Each merged version bumps the archive's mutation counter, so the
read-path caches (the archive-resident timestamp trees, the history
token lists, and any external :class:`~repro.indexes.keyindex.KeyIndex`
/ :class:`~repro.indexes.timestamp_tree.TimestampTreeIndex`) notice the
batch and refresh lazily on the next query — ingestion itself never
pays to keep them warm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..xmltree.model import Element
from .fingerprint import Fingerprinter
from .merge import MergeMemo, MergeStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .archive import Archive

#: Digest width of the skip memo.  Deliberately wide (the paper suggests
#: MD5-class fingerprints for value equality): skip decisions treat a
#: digest match as content equality, so the narrow collision-forcing
#: fingerprinters the test suite sorts with must never drive them.
DEFAULT_DIGEST_BITS = 128


class IngestSession:
    """A batch of versions merged into one archive under a shared memo.

    ``seed=True`` (the default) primes the memo from the archive's
    current state, so a batch appended to an existing archive skips
    unchanged subtrees from its very first version.  The session keeps
    cumulative :class:`MergeStats` in ``stats``; each :meth:`add` also
    returns the stats of that single version.
    """

    def __init__(
        self,
        archive: "Archive",
        digest_bits: int = DEFAULT_DIGEST_BITS,
        seed: bool = True,
    ) -> None:
        self.archive = archive
        self.memo = MergeMemo(Fingerprinter(bits=digest_bits))
        self.stats = MergeStats()
        if seed and archive.root.children and archive.last_version > 0:
            self.memo.seed(archive.root, archive.last_version)

    def add(self, document: Optional[Element]) -> MergeStats:
        """Merge the next version (``None`` records an empty version)."""
        stats = self.archive.add_version(document, memo=self.memo)
        self.stats.accumulate(stats)
        return stats

    def add_all(self, documents: Iterable[Optional[Element]]) -> MergeStats:
        """Merge a whole stream of versions; returns the batch totals."""
        total = MergeStats()
        for document in documents:
            total.accumulate(self.add(document))
        return total
