"""Further compaction of frontier content (Sec. 4.2, Example 4.3).

Plain Nested Merge stores each distinct value of a frontier node's
content in full, under its own timestamp.  *Further compaction* instead
keeps an SCCS-style weave: content is serialized to lines, a shortest
edit script (Myers) aligns the incoming version with the lines visible
in the previous state, unchanged lines merely have their timestamps
augmented, and only genuinely new lines are stored.  "Within the
frontier node, we represent the contents that remain the same across
versions only once and mark the parts that differ by timestamps."
"""

from __future__ import annotations

from ..diffbase.myers import diff_lines
from ..xmltree.model import Text
from ..xmltree.parser import parse_document
from ..xmltree.serializer import to_pretty_string
from .nodes import ContentNode, Weave, WeaveSegment
from .versionset import VersionSet


#: Reserved wrapper tag for top-level text in weave lines.  Joining
#: weave lines with newlines would otherwise pad bare text with
#: whitespace that does not reparse to the same value.
WEAVE_TEXT_TAG = "weave-text"


def content_to_lines(content: list[ContentNode]) -> list[str]:
    """Serialize frontier content to the line form the weave stores.

    Elements take their line-oriented serialization; top-level T-nodes
    become single ``<weave-text>`` lines with newlines escaped, so the
    inverse is exact even for mixed content.
    """
    lines: list[str] = []
    for node in content:
        if isinstance(node, Text):
            escaped = (
                node.text.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace(">", "&gt;")
                .replace("\n", "&#10;")
            )
            lines.append(f"<{WEAVE_TEXT_TAG}>{escaped}</{WEAVE_TEXT_TAG}>")
        else:
            lines.extend(to_pretty_string(node).rstrip("\n").split("\n"))
    return lines


def lines_to_content(lines: list[str]) -> list[ContentNode]:
    """Parse weave lines back into content nodes.

    Exact inverse of :func:`content_to_lines`: the lines are wrapped in
    a scratch element, re-parsed, and ``<weave-text>`` wrappers are
    unwrapped back into T-nodes.
    """
    if not lines:
        return []
    body = "\n".join(lines)
    scratch = parse_document(f"<weave-scratch>{body}</weave-scratch>")
    content: list[ContentNode] = []
    for child in scratch.children:
        child.parent = None
        if isinstance(child, Text):
            if not child.text.strip():
                continue  # joining artifact next to elements
            content.append(child)
        elif child.tag == WEAVE_TEXT_TAG:
            content.append(Text(child.text_content()))
        else:
            content.append(child)
    return content


def weave_from_content(content: list[ContentNode], timestamp: VersionSet) -> Weave:
    """A fresh weave holding one version's content."""
    lines = content_to_lines(content)
    if not lines:
        return Weave(segments=[])
    return Weave(segments=[WeaveSegment(timestamp=timestamp.copy(), lines=lines)])


def _latest_version(weave: Weave) -> int | None:
    latest = None
    for segment in weave.segments:
        if segment.timestamp:
            top = segment.timestamp.max_version()
            latest = top if latest is None else max(latest, top)
    return latest


def merge_weave(weave: Weave, content: list[ContentNode], version: int) -> bool:
    """Merge one version's frontier content into the weave.

    The incoming lines are aligned (shortest edit script) against the
    lines visible at the weave's latest recorded version — the SCCS
    discipline.  Kept lines gain ``version`` in their timestamps; new
    lines enter fresh segments timestamped ``{version}``; vanished lines
    simply stay un-augmented.  Returns ``True`` when content changed.
    """
    new_lines = content_to_lines(content)
    latest = _latest_version(weave)

    # The slots visible at the alignment version, in weave order.
    visible: list[tuple[WeaveSegment, int]] = []
    if latest is not None:
        for segment in weave.segments:
            if latest in segment.timestamp:
                for index in range(len(segment.lines)):
                    visible.append((segment, index))
    old_lines = [segment.lines[index] for segment, index in visible]

    if old_lines == new_lines:
        for segment in {id(seg): seg for seg, _ in visible}.values():
            segment.timestamp.add(version)
        return False

    ops = diff_lines(old_lines, new_lines)
    kept: set[int] = set()
    insert_before: dict[int, list[str]] = {}
    for op in ops:
        if op.kind == "equal":
            kept.update(range(op.a_start, op.a_end))
        elif op.kind == "insert":
            insert_before.setdefault(op.a_start, []).extend(
                new_lines[op.b_start : op.b_end]
            )

    rebuilt: list[WeaveSegment] = []

    def emit(lines: list[str], timestamp: VersionSet) -> None:
        if not lines:
            return
        if rebuilt and rebuilt[-1].timestamp == timestamp:
            rebuilt[-1].lines.extend(lines)
        else:
            rebuilt.append(WeaveSegment(timestamp=timestamp, lines=list(lines)))

    position = 0  # index into the visible slot sequence
    visible_ids = {id(segment) for segment, _ in visible}
    for segment in weave.segments:
        if id(segment) not in visible_ids:
            # Dormant segment (lines from older versions only): keep as-is.
            emit(segment.lines, segment.timestamp)
            continue
        for line in segment.lines:
            pending = insert_before.pop(position, None)
            if pending:
                emit(pending, VersionSet([version]))
            timestamp = segment.timestamp.copy()
            if position in kept:
                timestamp.add(version)
            emit([line], timestamp)
            position += 1
    trailing = insert_before.pop(position, None)
    if trailing:
        emit(trailing, VersionSet([version]))
    assert not insert_before, "unplaced weave insertions"

    weave.segments = rebuilt
    return True


def weave_content_at(weave: Weave, version: int) -> list[ContentNode]:
    """The content nodes visible at ``version``."""
    return lines_to_content(weave.lines_at(version))
