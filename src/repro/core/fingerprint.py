"""Fingerprints of XML values (Sec. 4.3).

A fingerprint is a fixed-width digest of the *canonical form* of an XML
value, so value-equal values always share a fingerprint (the DOMHash
idea).  Nested Merge can sort and compare keyed siblings by fingerprint
instead of by full key value; on a fingerprint match it verifies the
actual key values, so a collision never merges distinct nodes — the
sort token appends the actual key value as the final tie-breaker, which
is exactly that verification step expressed as ordering.

:class:`Fingerprinter` with a small ``bits`` value deliberately forces
collisions; the test suite uses it to demonstrate collision safety.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from ..keys.annotate import KeyLabel, KeyValue
from ..xmltree.canonical import canonical_form


@dataclass(frozen=True)
class Fingerprinter:
    """Digest function over canonical value strings.

    ``bits`` controls the digest width (the paper suggests 64 or 128,
    as for MD5); small widths are useful only to exercise collisions.
    """

    bits: int = 64

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 256:
            raise ValueError(f"Fingerprint width must be 1-256 bits, got {self.bits}")

    def fingerprint(self, canonical_value: str) -> int:
        """Fingerprint of one canonical value string."""
        digest = hashlib.sha256(canonical_value.encode("utf-8")).digest()
        value = int.from_bytes(digest, "big")
        return value >> (256 - self.bits)

    def fingerprint_key(self, key: KeyValue) -> tuple[tuple[str, int], ...]:
        """Fingerprint every component of a key value."""
        return tuple((path, self.fingerprint(value)) for path, value in key)

    def sort_token(self, label: KeyLabel) -> tuple:
        """A ``<=lab`` token ordering by fingerprints first.

        The actual key value trails the digests, so two distinct key
        values that collide on every fingerprint still compare as
        distinct — the collision-verification step of Sec. 4.3.
        """
        return (
            label.tag,
            len(label.key),
            self.fingerprint_key(label.key),
            label.key,
        )

    # -- subtree digests (batch-ingestion skip-merge) ----------------------

    def frontier_digest(
        self,
        tag: str,
        attributes: tuple[tuple[str, str], ...],
        content: Iterable,
    ) -> int:
        """Digest of a frontier node: tag, attributes and full content.

        ``content`` is the node's ordered E/T children; beyond the
        frontier order is significant, so the canonical forms are
        concatenated in document order.
        """
        rendered = "".join(canonical_form(child) for child in content)
        return self.fingerprint(f"F\x1f{tag}\x1f{attributes!r}\x1f{rendered}")

    def subtree_digest(
        self,
        tag: str,
        attributes: tuple[tuple[str, str], ...],
        child_digests: Iterable[int],
    ) -> int:
        """Merkle-style digest of an internal keyed node.

        ``child_digests`` must come in the archive's sibling order (the
        ``<=lab`` sort-token order) so the digest is invariant under the
        keyed-sibling reordering the archive itself ignores.
        """
        children = ",".join(str(digest) for digest in child_digests)
        return self.fingerprint(f"N\x1f{tag}\x1f{attributes!r}\x1f{children}")
