"""Timestamps as compact sets of version numbers (Sec. 2).

A timestamp is a set of version numbers stored as sorted, disjoint,
non-adjacent closed intervals — the paper's ``[1-3,5,7-9]`` notation.
Because scientific data is largely accretive, an element tends to live
through long runs of consecutive versions, so the interval encoding is
small (usually a single interval).
"""

from __future__ import annotations

from typing import Iterable, Iterator


class VersionSet:
    """A mutable set of positive version numbers with interval encoding."""

    __slots__ = ("_intervals",)

    def __init__(self, versions: Iterable[int] = ()) -> None:
        self._intervals: list[list[int]] = []
        for version in sorted(set(versions)):
            self.add(version)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_intervals(cls, intervals: Iterable[tuple[int, int]]) -> "VersionSet":
        """Build from ``(start, end)`` pairs (inclusive)."""
        result = cls()
        for start, end in intervals:
            result.add_range(start, end)
        return result

    @classmethod
    def parse(cls, text: str) -> "VersionSet":
        """Parse the textual form, e.g. ``'1-3,5,7-9'``."""
        result = cls()
        text = text.strip()
        if not text:
            return result
        for part in text.split(","):
            part = part.strip()
            if "-" in part:
                start_text, end_text = part.split("-", 1)
                result.add_range(int(start_text), int(end_text))
            else:
                result.add(int(part))
        return result

    def copy(self) -> "VersionSet":
        clone = VersionSet()
        clone._intervals = [list(pair) for pair in self._intervals]
        return clone

    # -- mutation ------------------------------------------------------------

    def add(self, version: int) -> None:
        """Insert one version number."""
        self.add_range(version, version)

    def add_range(self, start: int, end: int) -> None:
        """Insert the inclusive range ``start..end``."""
        if start > end:
            raise ValueError(f"Empty range {start}-{end}")
        if start < 1:
            raise ValueError(f"Version numbers are positive, got {start}")
        merged: list[list[int]] = []
        placed = False
        for lo, hi in self._intervals:
            if hi + 1 < start:          # entirely before, not adjacent
                merged.append([lo, hi])
            elif end + 1 < lo:          # entirely after, not adjacent
                if not placed:
                    merged.append([start, end])
                    placed = True
                merged.append([lo, hi])
            else:                        # overlaps or adjacent: absorb
                start = min(start, lo)
                end = max(end, hi)
        if not placed:
            merged.append([start, end])
        self._intervals = merged

    def discard(self, version: int) -> None:
        """Remove one version number if present."""
        updated: list[list[int]] = []
        for lo, hi in self._intervals:
            if version < lo or version > hi:
                updated.append([lo, hi])
                continue
            if lo <= version - 1:
                updated.append([lo, version - 1])
            if version + 1 <= hi:
                updated.append([version + 1, hi])
        self._intervals = updated

    # -- queries ---------------------------------------------------------------

    def __contains__(self, version: int) -> bool:
        # Binary search over the interval list.
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            start, end = self._intervals[mid]
            if version < start:
                hi = mid - 1
            elif version > end:
                lo = mid + 1
            else:
                return True
        return False

    def __iter__(self) -> Iterator[int]:
        for lo, hi in self._intervals:
            yield from range(lo, hi + 1)

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VersionSet) and self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(tuple(pair) for pair in self._intervals))

    def intervals(self) -> list[tuple[int, int]]:
        """The interval encoding as ``(start, end)`` pairs."""
        return [(lo, hi) for lo, hi in self._intervals]

    def interval_count(self) -> int:
        return len(self._intervals)

    def min_version(self) -> int:
        if not self._intervals:
            raise ValueError("Empty VersionSet has no minimum")
        return self._intervals[0][0]

    def max_version(self) -> int:
        if not self._intervals:
            raise ValueError("Empty VersionSet has no maximum")
        return self._intervals[-1][1]

    def issuperset(self, other: "VersionSet") -> bool:
        """``True`` when every version in ``other`` is in ``self``."""
        it = iter(self._intervals)
        current = next(it, None)
        for lo, hi in other._intervals:
            while current is not None and current[1] < lo:
                current = next(it, None)
            if current is None or not (current[0] <= lo and hi <= current[1]):
                return False
        return True

    # -- algebra -----------------------------------------------------------------

    def union(self, other: "VersionSet") -> "VersionSet":
        result = self.copy()
        for lo, hi in other._intervals:
            result.add_range(lo, hi)
        return result

    def intersection(self, other: "VersionSet") -> "VersionSet":
        result = VersionSet()
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                result.add_range(lo, hi)
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return result

    def difference(self, other: "VersionSet") -> "VersionSet":
        result = self.copy()
        for version in other:
            result.discard(version)
        return result

    def without(self, version: int) -> "VersionSet":
        """A copy with one version removed (the paper's ``T - {i}``)."""
        result = self.copy()
        result.discard(version)
        return result

    # -- text form ------------------------------------------------------------------

    def to_text(self) -> str:
        """Render the paper's notation: ``'1-3,5,7-9'``."""
        parts = []
        for lo, hi in self._intervals:
            parts.append(str(lo) if lo == hi else f"{lo}-{hi}")
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"VersionSet({self.to_text()!r})"
