"""Timestamps as compact sets of version numbers (Sec. 2).

A timestamp is a set of version numbers stored as sorted, disjoint,
non-adjacent closed intervals — the paper's ``[1-3,5,7-9]`` notation.
Because scientific data is largely accretive, an element tends to live
through long runs of consecutive versions, so the interval encoding is
small (usually a single interval).

The algebra is the retrieval hot path: ``_reconstruct`` runs one
membership test per archive node, and the timestamp trees union/
intersect/difference interval lists wholesale.  Every bulk operation is
therefore a single linear pass over the interval lists — construction,
``union``, ``intersection`` and ``difference`` are all ``O(n + m)`` —
and two small caches serve the point queries: the element count is
memoized until the next mutation, and ``in`` remembers the interval it
last landed on, so runs of nearby probes (retrieving one version across
thousands of nodes whose timestamps barely differ) skip the binary
search entirely.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def _validate_range(start: int, end: int) -> None:
    if start > end:
        raise ValueError(f"Empty range {start}-{end}")
    if start < 1:
        raise ValueError(f"Version numbers are positive, got {start}")


def _coalesce(pairs: Iterable[tuple[int, int]]) -> list[list[int]]:
    """Merge validated ``(start, end)`` pairs, pre-sorted by start, into
    the canonical disjoint non-adjacent interval list — one pass."""
    merged: list[list[int]] = []
    for start, end in pairs:
        if merged and start <= merged[-1][1] + 1:
            if end > merged[-1][1]:
                merged[-1][1] = end
        else:
            merged.append([start, end])
    return merged


class VersionSet:
    """A mutable set of positive version numbers with interval encoding."""

    __slots__ = ("_intervals", "_length", "_probe")

    def __init__(self, versions: Iterable[int] = ()) -> None:
        ordered = sorted(set(versions))
        intervals: list[list[int]] = []
        if ordered:
            _validate_range(ordered[0], ordered[0])
            start = previous = ordered[0]
            for version in ordered[1:]:
                if version == previous + 1:
                    previous = version
                else:
                    intervals.append([start, previous])
                    start = previous = version
            intervals.append([start, previous])
        self._intervals: list[list[int]] = intervals
        self._length: int | None = len(ordered)
        self._probe: int = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_normalized(cls, intervals: list[list[int]]) -> "VersionSet":
        """Adopt an already-canonical interval list (internal fast path)."""
        result = cls.__new__(cls)
        result._intervals = intervals
        result._length = None
        result._probe = 0
        return result

    @classmethod
    def from_intervals(cls, intervals: Iterable[tuple[int, int]]) -> "VersionSet":
        """Build from ``(start, end)`` pairs (inclusive).

        One sort plus one coalescing pass — linear in the number of
        pairs (after sorting), never a per-pair interval-list rebuild.
        """
        pairs = sorted(intervals)
        for start, end in pairs:
            _validate_range(start, end)
        return cls._from_normalized(_coalesce(pairs))

    @classmethod
    def parse(cls, text: str) -> "VersionSet":
        """Parse the textual form, e.g. ``'1-3,5,7-9'``."""
        text = text.strip()
        if not text:
            return cls()
        pairs: list[tuple[int, int]] = []
        for part in text.split(","):
            part = part.strip()
            if "-" in part:
                start_text, end_text = part.split("-", 1)
                pairs.append((int(start_text), int(end_text)))
            else:
                version = int(part)
                pairs.append((version, version))
        return cls.from_intervals(pairs)

    def copy(self) -> "VersionSet":
        clone = VersionSet.__new__(VersionSet)
        clone._intervals = [pair.copy() for pair in self._intervals]
        clone._length = self._length
        clone._probe = 0
        return clone

    # -- mutation ------------------------------------------------------------

    def add(self, version: int) -> None:
        """Insert one version number.

        The common archiving mutation is appending the next version to a
        timestamp that ends at the previous one; that case extends the
        last interval in place without touching the rest of the list.
        """
        _validate_range(version, version)
        intervals = self._intervals
        if intervals:
            last = intervals[-1]
            if last[0] <= version <= last[1]:
                return
            if version == last[1] + 1:
                last[1] = version
                if self._length is not None:
                    self._length += 1
                return
            if version > last[1]:
                intervals.append([version, version])
                if self._length is not None:
                    self._length += 1
                return
        self.add_range(version, version)

    def add_range(self, start: int, end: int) -> None:
        """Insert the inclusive range ``start..end`` (one linear pass)."""
        _validate_range(start, end)
        merged: list[list[int]] = []
        placed = False
        for lo, hi in self._intervals:
            if hi + 1 < start:          # entirely before, not adjacent
                merged.append([lo, hi])
            elif end + 1 < lo:          # entirely after, not adjacent
                if not placed:
                    merged.append([start, end])
                    placed = True
                merged.append([lo, hi])
            else:                        # overlaps or adjacent: absorb
                start = min(start, lo)
                end = max(end, hi)
        if not placed:
            merged.append([start, end])
        self._intervals = merged
        self._length = None
        self._probe = 0

    def discard(self, version: int) -> None:
        """Remove one version number if present."""
        updated: list[list[int]] = []
        for lo, hi in self._intervals:
            if version < lo or version > hi:
                updated.append([lo, hi])
                continue
            if lo <= version - 1:
                updated.append([lo, version - 1])
            if version + 1 <= hi:
                updated.append([version + 1, hi])
        self._intervals = updated
        self._length = None
        self._probe = 0

    # -- queries ---------------------------------------------------------------

    def __contains__(self, version: int) -> bool:
        intervals = self._intervals
        count = len(intervals)
        if count == 0:
            return False
        # Last-probe cursor: reconstruction probes the same handful of
        # versions against timestamps that mostly share intervals, so
        # the previous landing spot usually answers immediately.
        probe = self._probe
        if probe < count:
            start, end = intervals[probe]
            if start <= version <= end:
                return True
            if version > end and (
                probe + 1 == count or version < intervals[probe + 1][0]
            ):
                return False
        lo, hi = 0, count - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            start, end = intervals[mid]
            if version < start:
                hi = mid - 1
            elif version > end:
                lo = mid + 1
            else:
                self._probe = mid
                return True
        # Remember the nearest interval below: the next probe is usually
        # for a neighbouring version.
        self._probe = max(hi, 0)
        return False

    def __iter__(self) -> Iterator[int]:
        for lo, hi in self._intervals:
            yield from range(lo, hi + 1)

    def __len__(self) -> int:
        if self._length is None:
            self._length = sum(hi - lo + 1 for lo, hi in self._intervals)
        return self._length

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VersionSet) and self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(tuple(pair) for pair in self._intervals))

    def intervals(self) -> list[tuple[int, int]]:
        """The interval encoding as ``(start, end)`` pairs."""
        return [(lo, hi) for lo, hi in self._intervals]

    def interval_count(self) -> int:
        return len(self._intervals)

    def min_version(self) -> int:
        if not self._intervals:
            raise ValueError("Empty VersionSet has no minimum")
        return self._intervals[0][0]

    def max_version(self) -> int:
        if not self._intervals:
            raise ValueError("Empty VersionSet has no maximum")
        return self._intervals[-1][1]

    def issuperset(self, other: "VersionSet") -> bool:
        """``True`` when every version in ``other`` is in ``self``."""
        it = iter(self._intervals)
        current = next(it, None)
        for lo, hi in other._intervals:
            while current is not None and current[1] < lo:
                current = next(it, None)
            if current is None or not (current[0] <= lo and hi <= current[1]):
                return False
        return True

    # -- algebra -----------------------------------------------------------------

    def union(self, other: "VersionSet") -> "VersionSet":
        """Set union as one two-pointer merge: ``O(n + m)``."""
        a, b = self._intervals, other._intervals
        if not a:
            return other.copy()
        if not b:
            return self.copy()

        def interleave() -> Iterator[tuple[int, int]]:
            i = j = 0
            while i < len(a) and j < len(b):
                if a[i][0] <= b[j][0]:
                    yield a[i][0], a[i][1]
                    i += 1
                else:
                    yield b[j][0], b[j][1]
                    j += 1
            while i < len(a):
                yield a[i][0], a[i][1]
                i += 1
            while j < len(b):
                yield b[j][0], b[j][1]
                j += 1

        return VersionSet._from_normalized(_coalesce(interleave()))

    def intersection(self, other: "VersionSet") -> "VersionSet":
        """Set intersection as one two-pointer sweep: ``O(n + m)``."""
        result: list[list[int]] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                # Pieces of two canonical lists are never adjacent:
                # consecutive pieces straddle a gap of one input.
                result.append([lo, hi])
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return VersionSet._from_normalized(result)

    def difference(self, other: "VersionSet") -> "VersionSet":
        """Set difference as one interval sweep: ``O(n + m)``, never the
        version-at-a-time discard loop (``O(|other| · n)``)."""
        a, b = self._intervals, other._intervals
        if not a or not b:
            return self.copy()
        result: list[list[int]] = []
        j = 0
        for lo, hi in a:
            cursor = lo
            while j < len(b) and b[j][1] < cursor:
                j += 1
            k = j
            while k < len(b) and b[k][0] <= hi:
                if b[k][0] > cursor:
                    result.append([cursor, b[k][0] - 1])
                cursor = b[k][1] + 1
                if cursor > hi:
                    break
                k += 1
            if cursor <= hi:
                result.append([cursor, hi])
        return VersionSet._from_normalized(result)

    def without(self, version: int) -> "VersionSet":
        """A copy with one version removed (the paper's ``T - {i}``)."""
        result = self.copy()
        result.discard(version)
        return result

    # -- text form ------------------------------------------------------------------

    def to_text(self) -> str:
        """Render the paper's notation: ``'1-3,5,7-9'``."""
        parts = []
        for lo, hi in self._intervals:
            parts.append(str(lo) if lo == hi else f"{lo}-{hi}")
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"VersionSet({self.to_text()!r})"
