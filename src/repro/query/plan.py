"""The query planner: XPath + temporal scope → an archive-tree plan.

A plan decides, per location step, how much of the work can be pushed
into the archive's own structures instead of a materialized snapshot:

* **key lookup** — a child step whose predicates equate every key path
  of the step's key (per the archive's :class:`~repro.keys.spec.KeySpec`)
  compiles to a binary-search lookup over the sorted child lists — the
  Sec. 7.2 index machinery — instead of a sibling scan;
* **pushable predicates** — key-component equality, attribute equality
  and positional tests are decided on archive nodes directly (key
  values and attributes are stored on the node label);
* **residual predicates** — anything else (non-key child values,
  ``text()`` equality, values whose canonical form may disagree with
  ``text_content`` because of markup or escaping) forces the candidate
  subtree to be materialized at the scope version and checked in the
  element world — the *scan fallback*, bounded to that subtree;
* **version scoping** — every child scan consults the archive's
  timestamp trees, so children dead at the scope version are pruned
  without probing them individually.

The planner is deliberately static: it never touches the archive, only
the key specification, so a plan can be compiled once and executed
against any backend (in-memory, chunked, stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..keys.annotate import KeyValue
from ..keys.paths import Path, format_path
from ..keys.spec import KeySpec
from ..xmltree.xpath import (
    ATTRIBUTE,
    CHILD_VALUE,
    POSITION,
    Predicate,
    Step,
    TEXT_VALUE,
    parse_steps,
    split_text_step,
)

#: Predicate evaluation modes assigned by the planner.
PUSH_POSITION = "position"  # decided while scanning siblings
PUSH_ATTRIBUTE = "attribute"  # decided on the archive node's attributes
PUSH_KEY = "key"  # decided on the archive node's key label
RESIDUAL = "residual"  # needs the materialized element


def _plain_value(value: str) -> bool:
    """``True`` when ``value`` compares identically as canonical form
    and as ``text_content`` — no markup, no XML-escaped characters, no
    attribute encoding.  Key-equality pushdown is only sound for such
    values; others fall back to a residual (materialized) check."""
    return not any(ch in value for ch in "<>&\"@")


@dataclass(frozen=True)
class PlannedPredicate:
    """One predicate plus the mode the executor evaluates it in."""

    predicate: Predicate
    mode: str
    key_path: Optional[str] = None  # set for PUSH_KEY: the key component

    def describe(self) -> str:
        return f"{self.predicate} via {self.mode}"


@dataclass
class PlannedStep:
    """One location step with its compiled evaluation strategy."""

    step: Step
    predicates: list[PlannedPredicate]
    #: The keyed spec path this step lands on, when statically known
    #: (child-axis chains from the root; lost after ``//`` or ``*``).
    spec_path: Optional[Path] = None
    #: When set, the step is answered by one binary-search lookup with
    #: this key value instead of a child scan.
    lookup: Optional[KeyValue] = None

    @property
    def axis(self) -> str:
        return self.step.axis

    @property
    def name(self) -> str:
        return self.step.name

    def residuals(self) -> list[PlannedPredicate]:
        return [p for p in self.predicates if p.mode == RESIDUAL]

    def describe(self) -> str:
        marker = "//" if self.axis == "descendant" else "/"
        preds = "".join(str(p.predicate) for p in self.predicates)
        if self.lookup is not None:
            how = "key lookup (sorted child index)"
        elif self.axis == "descendant":
            how = "descendant walk, version-pruned"
        else:
            how = "child scan, timestamp-tree pruned"
        pushed = [p for p in self.predicates if p.mode != RESIDUAL]
        residual = self.residuals()
        notes = []
        if pushed and self.lookup is None:
            notes.append(f"pushdown: {', '.join(p.mode for p in pushed)}")
        if residual:
            notes.append(f"residual: {len(residual)} predicate(s) on materialized nodes")
        detail = f" [{'; '.join(notes)}]" if notes else ""
        return f"{marker}{self.name}{preds} -> {how}{detail}"


@dataclass
class QueryPlan:
    """A compiled query: steps plus whole-plan properties."""

    expression: str
    steps: list[PlannedStep]
    want_text: bool
    spec: KeySpec = field(repr=False, default=None)  # type: ignore[assignment]

    # -- whole-plan properties --------------------------------------------

    def uses_index(self) -> bool:
        return any(step.lookup is not None for step in self.steps)

    def has_descendant(self) -> bool:
        return any(step.axis == "descendant" for step in self.steps)

    def has_descendant_position(self) -> bool:
        """Positional predicates on descendant steps count candidates
        across whole subtrees — only the element evaluator gets that
        right, so such plans always fall back to a snapshot."""
        return any(
            step.axis == "descendant"
            and any(p.mode == PUSH_POSITION for p in step.predicates)
            for step in self.steps
        )

    def has_position_at(self, index: int) -> bool:
        """Whether the step at ``index`` carries a positional predicate.

        Partitioned backends need this: positions at the partition
        level (the document root's children) count siblings *across*
        parts, which no single part can see."""
        if index >= len(self.steps):
            return False
        return any(
            p.mode == PUSH_POSITION for p in self.steps[index].predicates
        )

    def root_residual(self) -> bool:
        """Residual predicates on a child-axis first step test the
        document root itself, which cannot be checked without
        materializing it (descendant first steps check candidates as
        they are found instead)."""
        return (
            bool(self.steps)
            and self.steps[0].axis == "child"
            and bool(self.steps[0].residuals())
        )

    def single_step(self) -> bool:
        return len(self.steps) == 1

    def describe(self) -> list[str]:
        lines = [f"query {self.expression!r}"]
        lines.extend(f"  {step.describe()}" for step in self.steps)
        if self.want_text:
            lines.append("  -> text() of the matched elements")
        if self.has_descendant_position():
            lines.append("  !! positional predicate on '//': snapshot fallback")
        if self.root_residual():
            lines.append("  !! residual predicate on the root step: snapshot fallback")
        return lines


def _classify(
    predicate: Predicate, spec: KeySpec, spec_path: Optional[Path]
) -> PlannedPredicate:
    if predicate.kind == POSITION:
        return PlannedPredicate(predicate, PUSH_POSITION)
    if predicate.kind == ATTRIBUTE:
        return PlannedPredicate(predicate, PUSH_ATTRIBUTE)
    key = spec.key_for(spec_path) if spec_path is not None else None
    if key is not None and _plain_value(predicate.value):
        component_paths = {
            format_path(key_path, absolute=False) for key_path in key.key_paths
        }
        if predicate.kind == CHILD_VALUE and predicate.name in component_paths:
            return PlannedPredicate(predicate, PUSH_KEY, key_path=predicate.name)
        if predicate.kind == TEXT_VALUE and "." in component_paths:
            # A content key — ``(tel, {.})`` — stores the node's own
            # canonical content as its key value.
            return PlannedPredicate(predicate, PUSH_KEY, key_path=".")
    return PlannedPredicate(predicate, RESIDUAL)


def _lookup_value(
    planned: list[PlannedPredicate], spec: KeySpec, spec_path: Optional[Path]
) -> Optional[KeyValue]:
    """The full key value when the predicates pin every key component."""
    key = spec.key_for(spec_path) if spec_path is not None else None
    if key is None:
        return None
    if any(p.mode == PUSH_POSITION for p in planned):
        # A positional predicate needs the sibling scan anyway.
        return None
    components: list[tuple[str, str]] = []
    for key_path in key.key_paths:
        path_text = format_path(key_path, absolute=False)
        match = next(
            (
                p
                for p in planned
                if p.mode == PUSH_KEY and p.key_path == path_text
            ),
            None,
        )
        if match is None:
            return None
        components.append((path_text, match.predicate.value))
    components.sort(key=lambda item: item[0])
    return tuple(components)


def compile_plan(expression: str, spec: KeySpec) -> QueryPlan:
    """Compile an XPath expression against a key specification.

    Raises :class:`~repro.xmltree.xpath.XPathError` on malformed
    expressions (same grammar as the element evaluator).
    """
    steps, want_text = split_text_step(parse_steps(expression))
    planned_steps: list[PlannedStep] = []
    spec_path: Optional[Path] = ()
    for index, step in enumerate(steps):
        if spec_path is not None and step.axis == "child" and step.name != "*":
            spec_path = spec_path + (step.name,)
        else:
            spec_path = None  # '//' and '*' lose the static path
        known_path = spec_path if spec_path and spec.is_keyed_path(spec_path) else None
        planned = [_classify(pred, spec, known_path) for pred in step.predicates]
        lookup = None
        if index > 0 and step.axis == "child" and step.name != "*":
            # The first step anchors at the document root — there is
            # nothing to look up in; later child steps are candidates.
            lookup = _lookup_value(planned, spec, known_path)
        planned_steps.append(
            PlannedStep(
                step=step,
                predicates=planned,
                spec_path=known_path,
                lookup=lookup,
            )
        )
    return QueryPlan(
        expression=expression, steps=planned_steps, want_text=want_text, spec=spec
    )
