"""Plan execution over the archive tree itself.

The executor never sees a backend: it walks *cursors*, and the three
cursor families make one evaluation algorithm serve every storage
shape:

* :class:`MemoryCursor` — an :class:`~repro.core.nodes.ArchiveNode`
  inside an in-memory :class:`~repro.core.archive.Archive` (the file
  backend, and each chunk of the chunked backend).  Child scans are
  guided by the archive's timestamp trees, key lookups by the sorted
  child lists, and matches materialize through
  :meth:`~repro.core.archive.Archive.reconstruct_node` — only the
  selected subtrees are ever built.
* :class:`StreamCursor` — a node of the external backend's key-sorted
  event stream.  Evaluation is a single forward pass in bounded
  memory: subtrees the plan rejects are drained without building
  anything, and only matched subtrees materialize.
* :class:`ElementCursor` — a plain materialized element.  Evaluation
  drops into this world below the frontier (where the archive stores
  content, not keyed nodes) and wherever a residual predicate forced a
  candidate to materialize; from there the element evaluator of
  :mod:`repro.xmltree.xpath` finishes the job, so planned and
  materialized evaluation agree by construction.

Results are yielded in snapshot document order as ``(anchor, element)``
pairs, where ``anchor`` is the sort token of the top-level record the
result lives under — the key the chunked backend merges per-chunk
streams by (hash partitioning scatters records, so chunk streams must
be re-interleaved into global key order).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from ..core.archive import Archive
from ..core.compaction import weave_content_at
from ..core.nodes import ArchiveNode
from ..core.tstree import ProbeCount
from ..core.versionset import VersionSet
from ..keys.annotate import KeyLabel
from ..storage.events import (
    ExitEvent,
    FrontierEvent,
    NodeEvent,
    PeekableEvents,
)
from ..xmltree.model import Element
from ..xmltree.xpath import CHILD_VALUE, apply_steps, virtual_shell
from .plan import (
    PUSH_ATTRIBUTE,
    PUSH_KEY,
    PUSH_POSITION,
    PlannedStep,
    QueryPlan,
    _plain_value,
)
from .result import QueryStats

#: Predicate verdicts at cursor level.
PASS = "pass"
FAIL = "fail"
NEEDS_ELEMENT = "needs-element"

#: The anchor of results not under any top-level record.
NO_ANCHOR: tuple = ()


def node_count(element: Element) -> int:
    """E+T nodes of a materialized subtree (the cost accounting unit)."""
    return sum(1 for _ in element.iter())


# -- cursors ------------------------------------------------------------------


class Cursor:
    """One archive position bound to a scope version."""

    supports_lookup = False
    tag: str

    def attribute(self, name: str) -> Optional[str]:
        raise NotImplementedError

    def key_component(self, path_text: str) -> Optional[str]:
        """The node's stored key value at ``path_text`` (``None`` when
        unknown — e.g. already in the element world)."""
        return None

    def order_token(self) -> tuple:
        """Plain label sort token (chunk-merge anchor)."""
        return NO_ANCHOR

    def children(self) -> Iterator["Cursor"]:
        """Children alive at the scope version, in document order.

        Stream-backed cursors are forward-only: the caller must fully
        consume (or :meth:`skip`) each yielded child before pulling the
        next one.
        """
        raise NotImplementedError

    def lookup(self, label: KeyLabel) -> Optional["Cursor"]:
        """Key-equality child lookup; ``None`` on miss (only when
        ``supports_lookup``)."""
        return None

    def materialize(self) -> Optional[Element]:
        """The subtree at the scope version (consumes stream cursors)."""
        raise NotImplementedError

    def skip(self) -> None:
        """Declare this cursor unused (drains stream cursors)."""


class MemoryCursor(Cursor):
    """A cursor over an in-memory archive node."""

    supports_lookup = True

    def __init__(
        self,
        archive: Archive,
        node: ArchiveNode,
        inherited: VersionSet,
        version: int,
        stats: QueryStats,
    ) -> None:
        self.archive = archive
        self.node = node
        self.inherited = inherited
        self.effective = node.effective_timestamp(inherited)
        self.version = version
        self.stats = stats

    @property
    def tag(self) -> str:  # type: ignore[override]
        return self.node.label.tag

    def attribute(self, name: str) -> Optional[str]:
        for attr_name, value in self.node.attributes:
            if attr_name == name:
                return value
        return None

    def key_component(self, path_text: str) -> Optional[str]:
        for component_path, value in self.node.label.key:
            if component_path == path_text:
                return value
        return None

    def order_token(self) -> tuple:
        return self.node.label.sort_token()

    def children(self) -> Iterator[Cursor]:
        node = self.node
        if node.is_frontier:
            for content in self._frontier_content():
                if isinstance(content, Element):
                    yield ElementCursor(content, self.stats)
            return
        probes = ProbeCount()
        indexes = self.archive.relevant_children(
            node, self.version, self.effective, probes
        )
        self.stats.tree_probes += probes.total()
        for index in indexes:
            self.stats.archive_nodes_visited += 1
            yield MemoryCursor(
                self.archive,
                node.children[index],
                self.effective,
                self.version,
                self.stats,
            )

    def _frontier_content(self):
        node = self.node
        if node.weave is not None:
            return weave_content_at(node.weave, self.version)
        alternative = node.alternative_at(self.version)
        return alternative.content if alternative is not None else []

    def lookup(self, label: KeyLabel) -> Optional[Cursor]:
        self.stats.index_lookups += 1
        child = self.archive.find_child(self.node, label)
        if child is None:
            return None
        self.stats.archive_nodes_visited += 1
        if self.version not in child.effective_timestamp(self.effective):
            return None
        return MemoryCursor(
            self.archive, child, self.effective, self.version, self.stats
        )

    def materialize(self) -> Optional[Element]:
        probes = ProbeCount()
        element = self.archive.reconstruct_node(
            self.node, self.version, self.inherited, probes=probes
        )
        self.stats.tree_probes += probes.total()
        if element is not None:
            self.stats.nodes_materialized += node_count(element)
        return element


class ElementCursor(Cursor):
    """A cursor over an already-materialized element."""

    def __init__(self, element: Element, stats: QueryStats) -> None:
        self.element = element
        self.stats = stats

    @property
    def tag(self) -> str:  # type: ignore[override]
        return self.element.tag

    def attribute(self, name: str) -> Optional[str]:
        return self.element.get_attribute(name)

    def children(self) -> Iterator[Cursor]:
        for child in self.element.element_children():
            yield ElementCursor(child, self.stats)

    def materialize(self) -> Optional[Element]:
        return self.element


class StreamCursor(Cursor):
    """A cursor over the external backend's event stream (one pass).

    A ``NodeEvent`` cursor owns the events up to its matching
    ``ExitEvent``; consuming it (``children``/``materialize``/``skip``)
    advances the shared stream past that subtree.  ``FrontierEvent``
    cursors are self-contained.
    """

    def __init__(
        self,
        event: Union[NodeEvent, FrontierEvent],
        events: PeekableEvents,
        inherited: VersionSet,
        version: int,
        stats: QueryStats,
    ) -> None:
        self.event = event
        self.events = events
        self.is_frontier = isinstance(event, FrontierEvent)
        self.effective = (
            event.timestamp if event.timestamp is not None else inherited
        )
        self.version = version
        self.stats = stats
        self._consumed = self.is_frontier

    @property
    def tag(self) -> str:  # type: ignore[override]
        return self.event.label.tag

    def attribute(self, name: str) -> Optional[str]:
        for attr_name, value in self.event.attributes:
            if attr_name == name:
                return value
        return None

    def key_component(self, path_text: str) -> Optional[str]:
        for component_path, value in self.event.label.key:
            if component_path == path_text:
                return value
        return None

    def order_token(self) -> tuple:
        return self.event.label.sort_token()

    def children(self) -> Iterator[Cursor]:
        if self.is_frontier:
            for content in self._frontier_content():
                if isinstance(content, Element):
                    yield ElementCursor(content, self.stats)
            return
        while True:
            head = self.events.peek()
            if head is None:
                self._consumed = True
                return
            if isinstance(head, ExitEvent):
                self.events.next()
                self._consumed = True
                return
            event = self.events.next()
            assert isinstance(event, (NodeEvent, FrontierEvent))
            self.stats.archive_nodes_visited += 1
            child = StreamCursor(
                event, self.events, self.effective, self.version, self.stats
            )
            if self.version not in child.effective:
                child.skip()
                continue
            yield child
            child.skip()  # drain whatever the consumer left behind

    def _frontier_content(self):
        assert isinstance(self.event, FrontierEvent)
        for alternative in self.event.alternatives:
            if alternative.timestamp is None or self.version in alternative.timestamp:
                return alternative.content
        return []

    def skip(self) -> None:
        if self._consumed:
            return
        depth = 1
        while depth:
            event = self.events.next()
            if isinstance(event, NodeEvent):
                depth += 1
            elif isinstance(event, ExitEvent):
                depth -= 1
            self.stats.events_skipped += 1
        self._consumed = True

    def materialize(self) -> Optional[Element]:
        element = Element(self.tag)
        for name, value in self.event.attributes:
            element.set_attribute(name, value)
        self.stats.nodes_materialized += 1
        if self.is_frontier:
            for content in self._frontier_content():
                element.append(content.copy())
            self.stats.nodes_materialized += node_count(element) - 1
            return element
        for child in self.children():
            sub = child.materialize()
            if sub is not None:
                element.append(sub)
        return element


# -- predicate checking -------------------------------------------------------


def check_predicates(
    cursor: Cursor, step: PlannedStep, position: Optional[int]
) -> str:
    """Decide a step's predicates against a cursor, without
    materializing.  Returns :data:`PASS`, :data:`FAIL`, or
    :data:`NEEDS_ELEMENT` when some predicate can only be decided on
    the materialized element (residuals, key values whose canonical
    form may disagree with ``text_content``, key components that live
    in attributes — the XPath child predicate only sees elements)."""
    needs = False
    for planned in step.predicates:
        predicate = planned.predicate
        if planned.mode == PUSH_POSITION:
            if position is None:
                needs = True
            elif position != predicate.position:
                return FAIL
        elif planned.mode == PUSH_ATTRIBUTE:
            if cursor.attribute(predicate.name or "") != predicate.value:
                return FAIL
        elif planned.mode == PUSH_KEY:
            stored = cursor.key_component(planned.key_path or "")
            if stored is None or not _plain_value(stored):
                needs = True
            elif (
                predicate.kind == CHILD_VALUE
                and cursor.attribute(predicate.name or "") is not None
            ):
                needs = True
            elif stored != predicate.value:
                return FAIL
        else:  # RESIDUAL
            needs = True
    return NEEDS_ELEMENT if needs else PASS


def _element_matches(element: Element, step: PlannedStep, position: int) -> bool:
    return all(
        planned.predicate.matches(element, position)
        for planned in step.predicates
    )


# -- the evaluator ------------------------------------------------------------


def run_plan(
    root_cursor: Cursor, plan: QueryPlan, stats: QueryStats
) -> Iterator[tuple[tuple, Element]]:
    """Evaluate ``plan`` from the archive's synthetic root cursor.

    ``root_cursor`` plays the XPath document node: its children are the
    document roots (at most one alive per version).  Yields
    ``(anchor, element)`` in snapshot document order.
    """
    steps = plan.steps
    first, rest = steps[0], steps[1:]
    if first.axis == "child":
        for child in root_cursor.children():
            if not match_name_text(child.tag, first.name):
                child.skip()
                continue
            verdict = check_predicates(child, first, 1)
            if verdict == FAIL:
                child.skip()
                continue
            if verdict == NEEDS_ELEMENT:
                element = child.materialize()
                if element is None or not _element_matches(element, first, 1):
                    continue
                for result in apply_steps([element], _raw(rest)):
                    yield (NO_ANCHOR, result)
                continue
            yield from _eval(child, rest, depth=0, anchor=None)
    else:
        for child in root_cursor.children():
            yield from _descend(child, first, rest, depth=0, anchor=None)


def match_name_text(tag: str, name: str) -> bool:
    return name == "*" or tag == name


def _raw(steps: Sequence[PlannedStep]):
    return [planned.step for planned in steps]


def _anchor_of(cursor: Cursor, depth: int, anchor: Optional[tuple]) -> Optional[tuple]:
    """Results are anchored at the top-level record (depth 1)."""
    if depth == 1 and anchor is None:
        return cursor.order_token()
    return anchor


def _yield_key(anchor: Optional[tuple]) -> tuple:
    return anchor if anchor is not None else NO_ANCHOR


def _eval(
    cursor: Cursor,
    steps: Sequence[PlannedStep],
    depth: int,
    anchor: Optional[tuple],
) -> Iterator[tuple[tuple, Element]]:
    """Evaluate the remaining steps below an already-matched cursor."""
    if not steps:
        element = cursor.materialize()
        if element is not None:
            yield (_yield_key(anchor), element)
        return
    step, rest = steps[0], steps[1:]
    if step.axis == "descendant":
        yield from _descend(cursor, step, rest, depth, anchor)
        return
    if step.lookup is not None and cursor.supports_lookup:
        hit = cursor.lookup(KeyLabel(tag=step.name, key=step.lookup))
        if hit is not None:
            child_anchor = _anchor_of(hit, depth + 1, anchor)
            verdict = check_predicates(hit, step, None)
            if verdict == PASS:
                yield from _eval(hit, rest, depth + 1, child_anchor)
                return
            if verdict == NEEDS_ELEMENT:
                element = hit.materialize()
                # Residual re-check without a sibling position: lookup
                # plans carry no positional predicates by construction.
                if element is not None and _element_matches(element, step, 0):
                    for result in apply_steps([element], _raw(rest)):
                        yield (_yield_key(child_anchor), result)
                return
            return  # FAIL: the looked-up node does not satisfy the step
        # A miss is only trustworthy for plain stored key values; fall
        # through to the sibling scan, which handles every encoding.
    position = 0
    for child in cursor.children():
        if not match_name_text(child.tag, step.name):
            child.skip()
            continue
        position += 1
        verdict = check_predicates(child, step, position)
        if verdict == FAIL:
            child.skip()
            continue
        child_anchor = _anchor_of(child, depth + 1, anchor)
        if verdict == NEEDS_ELEMENT:
            element = child.materialize()
            if element is None or not _element_matches(element, step, position):
                continue
            for result in apply_steps([element], _raw(rest)):
                yield (_yield_key(child_anchor), result)
            continue
        yield from _eval(child, rest, depth + 1, child_anchor)


def _descend(
    cursor: Cursor,
    step: PlannedStep,
    rest: Sequence[PlannedStep],
    depth: int,
    anchor: Optional[tuple],
) -> Iterator[tuple[tuple, Element]]:
    """Descendant-or-self evaluation, pre-order.

    A cursor that passes the name test (and is not ruled out by the
    pushable predicates) materializes once; the whole sub-expression —
    this descendant step plus the rest — is then delegated to the
    element evaluator over that subtree, which also finds the nested
    matches a forward-only stream could not revisit.  Cursors the
    pushdown definitively rejects are descended in the archive world.
    """
    cursor_anchor = _anchor_of(cursor, depth, anchor)
    if match_name_text(cursor.tag, step.name):
        verdict = check_predicates(cursor, step, None)
        if verdict != FAIL:
            element = cursor.materialize()
            if element is not None:
                results = apply_steps(
                    [virtual_shell(element)], [step.step] + _raw(rest)
                )
                for result in results:
                    yield (_yield_key(cursor_anchor), result)
            return
    for child in cursor.children():
        yield from _descend(child, step, rest, depth + 1, cursor_anchor)
