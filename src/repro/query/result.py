"""Typed, streaming query results.

Every :class:`~repro.query.db.ArchiveDB` read returns a
:class:`QueryResult`: a lazy iterator over elements, strings or
:class:`~repro.core.tempquery.Change` records, tagged with its
``kind`` and carrying the :class:`QueryStats` accounting the planner's
pushdown claims are measured by.  Results stream — iteration pulls
items out of the underlying plan execution one at a time, and nothing
past the consumed prefix is materialized — while still supporting
list-style convenience (``all()``, ``first()``, ``len`` after
exhaustion) by caching what has already been produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional


ELEMENTS = "elements"
STRINGS = "strings"
CHANGES = "changes"

_KINDS = (ELEMENTS, STRINGS, CHANGES)


@dataclass
class QueryStats:
    """Work accounting of one query execution.

    ``archive_nodes_visited`` counts archive-tree nodes the executor
    inspected (including index-lookup hits); ``tree_probes`` counts
    timestamp-tree nodes probed for version scoping;
    ``nodes_materialized`` counts E/T nodes actually built into result
    elements; ``index_lookups`` counts key-equality steps answered by
    binary search instead of a child scan; ``chunks_pruned`` counts
    chunk files skipped wholesale via presence sidecars;
    ``chunks_routed_past`` counts chunks a partition-level key lookup
    never had to consider because the hash router named the one owner;
    ``events_skipped`` counts stream events drained without building
    anything (external backend).  ``fallback`` is set when the plan
    abandoned the archive walk for materialize-then-evaluate.

    Parallel chunk fan-out reports through two extra fields:
    ``parallel_chunks`` counts chunk plans evaluated in worker
    processes and ``workers_used`` the pool width they ran under (0
    for an all-serial query).  Worker-local accounting folds back into
    the parent's stats via :meth:`merge`, so the headline totals are
    the same work count a serial run would report.

    ``cache_hits``/``cache_misses`` count decoded-chunk cache traffic
    this query caused (both 0 on non-caching handles): a hit means a
    chunk's decode was skipped entirely because the process-wide cache
    held it at the chunk's current staleness token.
    """

    archive_nodes_visited: int = 0
    tree_probes: int = 0
    nodes_materialized: int = 0
    index_lookups: int = 0
    chunks_pruned: int = 0
    chunks_routed_past: int = 0
    events_skipped: int = 0
    parallel_chunks: int = 0
    workers_used: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    fallback: bool = False
    fallback_reason: Optional[str] = None

    def nodes_visited(self) -> int:
        """The planner's headline metric: total nodes this query
        touched — archive probes plus everything materialized."""
        return (
            self.archive_nodes_visited
            + self.tree_probes
            + self.nodes_materialized
            + self.events_skipped
        )

    def mark_fallback(self, reason: str) -> None:
        self.fallback = True
        self.fallback_reason = reason

    def merge(self, other: "QueryStats") -> None:
        """Fold a worker's chunk-local accounting into this one.

        Counters add; ``workers_used`` keeps the widest pool seen; the
        fallback flag never travels (workers only ever run planned
        evaluations — a fallback happens in the parent, before any
        fan-out).
        """
        self.archive_nodes_visited += other.archive_nodes_visited
        self.tree_probes += other.tree_probes
        self.nodes_materialized += other.nodes_materialized
        self.index_lookups += other.index_lookups
        self.chunks_pruned += other.chunks_pruned
        self.chunks_routed_past += other.chunks_routed_past
        self.events_skipped += other.events_skipped
        self.parallel_chunks += other.parallel_chunks
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.workers_used = max(self.workers_used, other.workers_used)


class QueryResult:
    """A lazy, typed stream of query answers.

    ``kind`` is ``'elements'``, ``'strings'`` or ``'changes'``.
    Iteration is incremental and repeatable: consumed items are cached,
    so a second ``for`` loop replays them before continuing the
    underlying execution.  ``stats`` fills in as items are produced and
    is complete once the result is exhausted.
    """

    def __init__(
        self,
        items: Iterable[Any],
        kind: str,
        stats: Optional[QueryStats] = None,
        plan_description: Optional[list[str]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"Unknown result kind {kind!r}")
        self.kind = kind
        self.stats = stats if stats is not None else QueryStats()
        self.plan_description = plan_description or []
        self._source: Optional[Iterator[Any]] = iter(items)
        self._cache: list[Any] = []

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        index = 0
        while True:
            if index < len(self._cache):
                yield self._cache[index]
                index += 1
                continue
            item = self._pull()
            if item is _DONE:
                return
            yield item
            index += 1

    def _pull(self):
        if self._source is None:
            return _DONE
        try:
            item = next(self._source)
        except StopIteration:
            self._source = None
            return _DONE
        self._cache.append(item)
        return item

    # -- convenience -------------------------------------------------------

    def all(self) -> list[Any]:
        """Exhaust the stream and return every item."""
        while self._pull() is not _DONE:
            pass
        return list(self._cache)

    def first(self) -> Optional[Any]:
        """The first item, or ``None`` — pulls at most one item."""
        for item in self:
            return item
        return None

    def count(self) -> int:
        """Number of items (exhausts the stream)."""
        return len(self.all())

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return self.first() is not None

    def __repr__(self) -> str:
        state = "exhausted" if self._source is None else "streaming"
        return (
            f"QueryResult(kind={self.kind!r}, {state}, "
            f"produced={len(self._cache)})"
        )


class _Done:
    __slots__ = ()


_DONE = _Done()
