"""The query subsystem: one planned, index-aware surface (Sec. 7 + 8).

``repro.open(path)`` (or :func:`open_db` here) returns an
:class:`ArchiveDB` over any storage backend; queries compile to plans
(:mod:`~repro.query.plan`) that evaluate over the archive tree itself
(:mod:`~repro.query.exec`) and stream typed results
(:mod:`~repro.query.result`).
"""

from .db import ArchiveDB, RangeScope, VersionScope, open_db
from .plan import QueryPlan, compile_plan
from .result import QueryResult, QueryStats

__all__ = [
    "ArchiveDB",
    "QueryPlan",
    "QueryResult",
    "QueryStats",
    "RangeScope",
    "VersionScope",
    "compile_plan",
    "open_db",
]
