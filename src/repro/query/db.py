"""`ArchiveDB` — one queryable surface over every archive backend.

The paper's payoff is that a keyed archive is a *temporal database*,
not just compact storage.  This module is the door to it::

    import repro

    with repro.open("archive.xml") as db:
        db.versions()                                  # VersionSet
        db.at(3).select("/db/dept[name='finance']/emp")  # streaming elements
        db.at(3).select("//tel/text()")                # streaming strings
        db.between(2, 5).changes()                     # streaming Change records
        db.history("/db/dept[name=finance]")           # ElementHistory
        db.first_appearance("/db/dept[name=finance]")  # version number
        db.explain("/db/dept[name='x']/emp")           # the plan, human-readable

``repro.open`` accepts a path (any storage backend — the manifest
decides), an already-open :class:`~repro.storage.backend.StorageBackend`
or a bare in-memory :class:`~repro.core.archive.Archive`.  Queries are
compiled by :mod:`repro.query.plan` and executed by
:mod:`repro.query.exec` over the archive tree itself — key-equality
steps through the sorted child lists, version scoping through the
timestamp trees, chunk-presence pruning on the chunked backend, one
bounded-memory pass on the external stream — and only fall back to
materialize-then-evaluate when the plan says so (the ``fallback`` flag
and reason are on every result's ``stats``).
"""

from __future__ import annotations

import heapq
import os
import re
from typing import Iterator, Optional, Union

from ..core.archive import Archive, ArchiveError
from ..core.tempquery import ChangeReport
from ..core.versionset import VersionSet
from ..keys.annotate import KeyLabel
from ..keys.spec import KeySpec
from ..storage.archiver import ExternalArchiver
from ..storage.backend import FileBackend, StorageBackend, open_archive
from ..storage.chunked import ChunkedArchiver
from ..storage.events import NodeEvent, PeekableEvents, read_events
from ..storage.parallel import _query_chunk_task
from ..xmltree.model import Element
from ..xmltree.xpath import evaluate_steps
from .exec import MemoryCursor, StreamCursor, node_count, run_plan
from .plan import QueryPlan, compile_plan
from .result import CHANGES, ELEMENTS, STRINGS, QueryResult, QueryStats

Source = Union[str, "os.PathLike[str]", Archive, StorageBackend]


_QUOTED_VALUE = re.compile(r"=\s*(['\"])(.*?)\1")


def _path_within(path: str, prefix: str) -> bool:
    """Step-boundary prefix match on keyed paths.

    ``path`` is within ``prefix`` when it is the prefix itself, a
    descendant step (``prefix + '/...'``), or the prefix with a key
    predicate appended (``/db/dept`` covers ``/db/dept[name=x]``) — a
    plain ``startswith`` would also leak sibling tags that merely
    extend the name (``.../sal`` matching ``.../salx``).  Quoted
    predicate values (``[name='finance']``, the ``select`` grammar) are
    normalized to the unquoted form :class:`Change` paths render, so
    the same expression works across both query modes.
    """
    prefix = _QUOTED_VALUE.sub(r"=\2", prefix).rstrip("/") or "/"
    if prefix == "/":
        return True
    if not path.startswith(prefix):
        return False
    remainder = path[len(prefix) :]
    return remainder == "" or remainder[0] in "/["


def open_db(
    source: Source,
    *,
    keys_file: Optional[str] = None,
    options=None,
    workers: int = 1,
) -> "ArchiveDB":
    """Open an :class:`ArchiveDB` over a path, backend or archive.

    A path — ``str`` or :class:`os.PathLike` — is routed through
    :func:`repro.storage.backend.open_archive` (backend auto-detected
    from the manifest); the database then owns the backend and
    ``close()`` releases it.  Backends and in-memory archives are
    wrapped without taking ownership (their own ``workers`` setting
    applies; the ``workers`` argument here configures only backends
    this call opens).

    ``workers`` above 1 evaluates chunk query plans in a process pool
    on the chunked backend (results and their order are identical to
    a serial run; ``stats.parallel_chunks``/``workers_used`` report
    the fan-out).
    """
    if isinstance(source, (Archive, StorageBackend)):
        return ArchiveDB(source)
    backend = open_archive(
        os.fspath(source), keys_file=keys_file, options=options, workers=workers
    )
    return ArchiveDB(backend, owns_backend=True)


class ArchiveDB:
    """The query facade over one archive, whatever its storage shape."""

    def __init__(
        self, source: Union[Archive, StorageBackend], *, owns_backend: bool = False
    ) -> None:
        if isinstance(source, Archive):
            self.backend: Optional[StorageBackend] = None
            self._archive: Optional[Archive] = source
        elif isinstance(source, StorageBackend):
            self.backend = source
            self._archive = None
        else:
            raise ArchiveError(
                f"ArchiveDB wraps an Archive or StorageBackend, "
                f"not {type(source).__name__}"
            )
        self._owns_backend = owns_backend

    # -- identity ----------------------------------------------------------

    @property
    def spec(self) -> KeySpec:
        if self._archive is not None:
            return self._archive.spec
        assert self.backend is not None
        return self.backend.spec

    @property
    def kind(self) -> str:
        """The storage shape queries run against."""
        return "memory" if self.backend is None else self.backend.kind

    @property
    def workers(self) -> int:
        """Chunk-loop parallelism of the underlying backend (1 = serial)."""
        if self.backend is None:
            return 1
        return getattr(self.backend, "workers", 1)

    @property
    def last_version(self) -> int:
        if self._archive is not None:
            return self._archive.last_version
        assert self.backend is not None
        return self.backend.last_version

    def versions(self) -> VersionSet:
        """Every archived version (they are contiguous from 1)."""
        last = self.last_version
        if last == 0:
            return VersionSet()
        return VersionSet.from_intervals([(1, last)])

    # -- scopes ------------------------------------------------------------

    def at(self, version: int) -> "VersionScope":
        """Scope queries to one archived version."""
        return VersionScope(self, version)

    def between(self, from_version: int, to_version: int) -> "RangeScope":
        """Scope queries to the changes between two versions."""
        return RangeScope(self, from_version, to_version)

    # -- temporal history (Sec. 7.2) ---------------------------------------

    def history(self, path: str):
        """Temporal history of the element at a keyed path."""
        if self._archive is not None:
            return self._archive.history(path)
        assert self.backend is not None
        return self.backend.history(path)

    def first_appearance(self, path: str) -> int:
        """The version in which the element at ``path`` first existed.

        Raises :class:`ArchiveError` when the path never existed.  The
        path resolves with one binary search per step over the sorted
        child lists (``O(l log d)``, the Sec. 7.2 index machinery).
        """
        existence = self.history(path).existence
        if not existence:
            raise ArchiveError(f"Element at {path!r} has an empty existence")
        return existence.min_version()

    def last_change(self, path: str) -> int:
        """The version in which the element's content last changed.

        For frontier elements this is the start of the current
        content's reign; elements without content changes report their
        first appearance.  Raises :class:`ArchiveError` when the path
        never existed.
        """
        history = self.history(path)
        if history.changes:
            current = history.changes[-1][0]
            if not current:
                raise ArchiveError(f"Element at {path!r} has an empty existence")
            return current.min_version()
        if not history.existence:
            raise ArchiveError(f"Element at {path!r} has an empty existence")
        return history.existence.min_version()

    # -- planning ----------------------------------------------------------

    def plan(self, expression: str) -> QueryPlan:
        return compile_plan(expression, self.spec)

    def explain(self, expression: str) -> list[str]:
        """The compiled plan, one human-readable line per step."""
        plan = self.plan(expression)
        lines = plan.describe()
        reason = self._fallback_reason(plan)
        if reason is not None:
            lines.append(f"  !! snapshot fallback on this backend: {reason}")
        return lines

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._owns_backend and self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "ArchiveDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ArchiveDB(kind={self.kind!r}, versions={self.last_version})"

    # -- internals ---------------------------------------------------------

    def _memory_archive(self) -> Optional[Archive]:
        """The in-memory archive, when this source has one."""
        if self._archive is not None:
            return self._archive
        if isinstance(self.backend, FileBackend):
            return self.backend.archive
        return None

    def _counting_cache(self, stats: QueryStats, loader):
        """Run a backend load, folding its decoded-chunk cache traffic
        (hit/miss counter movement on the handle) into the query's
        stats."""
        hits = getattr(self.backend, "cache_hits", 0)
        misses = getattr(self.backend, "cache_misses", 0)
        result = loader()
        stats.cache_hits += getattr(self.backend, "cache_hits", 0) - hits
        stats.cache_misses += getattr(self.backend, "cache_misses", 0) - misses
        return result

    def _check_version(self, version: int) -> None:
        last = self.last_version
        if not 1 <= version <= last:
            raise ArchiveError(
                f"Version {version} is not in the archive (have 1..{last})"
                if last
                else f"Version {version} is not in the archive (it is empty)"
            )

    def _retrieve(self, version: int) -> Optional[Element]:
        if self._archive is not None:
            return self._archive.retrieve(version)
        assert self.backend is not None
        return self.backend.retrieve(version)

    def _diff(self, from_version: int, to_version: int) -> ChangeReport:
        if self._archive is not None:
            from ..core.tempquery import archive_diff

            return archive_diff(self._archive, from_version, to_version)
        assert self.backend is not None
        return self.backend.diff(from_version, to_version)

    def _fallback_reason(self, plan: QueryPlan) -> Optional[str]:
        """Why this plan cannot run over the archive tree here."""
        if plan.has_descendant_position():
            return "positional predicate on a descendant step"
        if plan.root_residual():
            return "residual predicate on the root step"
        if isinstance(self.backend, ChunkedArchiver) and self._archive is None:
            if plan.single_step():
                return "the query selects the document root, which no single chunk holds"
            if plan.has_descendant():
                return "descendant steps may select nodes above the chunk partition level"
            if plan.has_position_at(1):
                return "positional predicate at the partition level counts across chunks"
        return None

    # -- query execution ---------------------------------------------------

    def _select(self, version: int, expression: str) -> QueryResult:
        self._check_version(version)
        plan = compile_plan(expression, self.spec)
        stats = QueryStats()
        reason = self._fallback_reason(plan)
        if reason is not None:
            elements = self._fallback_items(version, plan, stats, reason)
        else:
            memory = self._counting_cache(stats, self._memory_archive)
            if memory is not None:
                elements = self._memory_items(memory, plan, version, stats)
            elif isinstance(self.backend, ChunkedArchiver):
                elements = self._chunked_items(self.backend, plan, version, stats)
            elif isinstance(self.backend, ExternalArchiver):
                elements = self._stream_items(self.backend, plan, version, stats)
            else:  # an unknown future backend: correct, if unplanned
                elements = self._fallback_items(
                    version, plan, stats, "backend without a planned evaluation"
                )
        if plan.want_text:
            items: Iterator = (element.text_content() for element in elements)
            kind = STRINGS
        else:
            items = elements
            kind = ELEMENTS
        return QueryResult(items, kind, stats, plan.describe())

    def _fallback_items(
        self, version: int, plan: QueryPlan, stats: QueryStats, reason: str
    ) -> Iterator[Element]:
        stats.mark_fallback(reason)

        def generate() -> Iterator[Element]:
            snapshot = self._counting_cache(
                stats, lambda: self._retrieve(version)
            )
            if snapshot is None:
                return
            stats.nodes_materialized += node_count(snapshot)
            raw_steps = [planned.step for planned in plan.steps]
            yield from evaluate_steps(snapshot, raw_steps)

        return generate()

    def _memory_items(
        self, archive: Archive, plan: QueryPlan, version: int, stats: QueryStats
    ) -> Iterator[Element]:
        def generate() -> Iterator[Element]:
            root_timestamp = archive.root.timestamp
            if root_timestamp is None:
                raise ArchiveError("Archive root carries no timestamp")
            cursor = MemoryCursor(
                archive, archive.root, root_timestamp, version, stats
            )
            for _, element in run_plan(cursor, plan, stats):
                yield element

        return generate()

    def _chunked_items(
        self,
        backend: ChunkedArchiver,
        plan: QueryPlan,
        version: int,
        stats: QueryStats,
    ) -> Iterator[Element]:
        """Fan a plan out to the owning chunks and re-interleave.

        Chunks whose presence timestamps exclude the version are pruned
        before their XML is parsed.  Per-chunk result streams arrive in
        chunk-internal order; they are merged on the top-level record's
        sort token so the global order matches a snapshot's
        (:func:`~repro.storage.chunked.restore_key_order`).  Merging is
        a lazy k-way heap merge, except under a fingerprinter — chunk
        order is then fingerprint order, not key order, so results are
        collected and sorted once.

        When the backend was opened with ``workers > 1``, the live
        chunks evaluate in its process pool instead: each worker gets
        the chunk's verified bytes plus the compiled plan (plain,
        picklable data), returns its ordered result list, and the
        parent sorts the union on the same ``(anchor, seq)`` key the
        serial merge uses — same elements, same order, with the
        worker-side accounting folded back into ``stats``.
        """

        def part_stream(index: int) -> Iterator[tuple[tuple, int, Element]]:
            archive = self._counting_cache(
                stats, lambda: backend.load_part(index)
            )
            root_timestamp = archive.root.timestamp
            if root_timestamp is None:
                return
            cursor = MemoryCursor(
                archive, archive.root, root_timestamp, version, stats
            )
            for seq, (anchor, element) in enumerate(run_plan(cursor, plan, stats)):
                yield (anchor, seq, element)

        def live_indices(indices) -> list[int]:
            live = []
            for index in indices:
                if not backend.part_exists(index):
                    continue
                presence = backend.part_presence(index)
                if presence is not None and version not in presence:
                    stats.chunks_pruned += 1
                    continue
                live.append(index)
            return live

        def parallel_items(live: list[int]) -> list[tuple[tuple, int, Element]]:
            tasks = []
            for index in live:
                payload = backend.read_part_payload(index)
                if payload is None:
                    continue
                tasks.append(
                    (
                        index,
                        payload,
                        backend.codec.name,
                        backend.spec,
                        backend.options,
                        plan,
                        version,
                    )
                )
            stats.workers_used = max(stats.workers_used, backend.workers)
            collected: list[tuple[tuple, int, Element]] = []
            for _index, items, worker_stats in backend.pool.map(
                _query_chunk_task, tasks
            ):
                stats.parallel_chunks += 1
                stats.merge(worker_stats)
                collected.extend(items)
            collected.sort(key=lambda item: (item[0], item[1]))
            return collected

        def run_over(indices) -> Iterator[Element]:
            live = live_indices(indices)
            merged: Iterator[tuple[tuple, int, Element]]
            if backend.workers > 1 and len(live) > 1:
                merged = iter(parallel_items(live))
            elif backend.options.fingerprinter is not None:
                collected = [
                    item for index in live for item in part_stream(index)
                ]
                collected.sort(key=lambda item: (item[0], item[1]))
                merged = iter(collected)
            else:
                merged = heapq.merge(
                    *(part_stream(index) for index in live),
                    key=lambda item: (item[0], item[1]),
                )
            for _, _, element in merged:
                yield element

        def generate() -> Iterator[Element]:
            owner = self._routed_chunk(backend, plan)
            if owner is None:
                yield from run_over(range(backend.part_count))
                return
            produced = False
            for element in run_over([owner]):
                produced = True
                yield element
            if produced:
                stats.chunks_routed_past += backend.part_count - 1
                return
            # The routed chunk answered nothing.  A key value whose
            # stored canonical form differs from the predicate's text
            # (markup, escaping) hashes elsewhere, so an empty answer is
            # only trustworthy after the other chunks scan too — misses
            # cost a fan-out, hits open exactly one chunk.
            yield from run_over(
                index for index in range(backend.part_count) if index != owner
            )

        return generate()

    def _routed_chunk(
        self, backend: ChunkedArchiver, plan: QueryPlan
    ) -> Optional[int]:
        """The single chunk owning a partition-level key lookup.

        A key lookup at the step selecting a top-level record pins the
        record's key value, and the hash router maps a key value to
        exactly one chunk — the query opens that chunk alone.  ``None``
        when the plan has no partition-level lookup to route by.
        """
        if len(plan.steps) >= 2 and plan.steps[1].lookup is not None:
            step = plan.steps[1]
            return backend.chunk_index_for_label(
                KeyLabel(tag=step.name, key=step.lookup)
            )
        return None

    def _stream_items(
        self,
        backend: ExternalArchiver,
        plan: QueryPlan,
        version: int,
        stats: QueryStats,
    ) -> Iterator[Element]:
        def generate() -> Iterator[Element]:
            events = PeekableEvents(
                read_events(
                    backend.archive_path, backend.io_stats, backend.codec
                )
            )
            root = events.next()
            if not isinstance(root, NodeEvent) or root.timestamp is None:
                raise ArchiveError("Archive stream carries no root timestamp")
            cursor = StreamCursor(root, events, root.timestamp, version, stats)
            for _, element in run_plan(cursor, plan, stats):
                yield element

        return generate()


class VersionScope:
    """Queries against one archived version (``db.at(v)``)."""

    def __init__(self, db: ArchiveDB, version: int) -> None:
        self.db = db
        self.version = version

    def select(self, expression: str) -> QueryResult:
        """Evaluate an XPath expression at this version.

        Returns a streaming :class:`QueryResult` of elements (or of
        strings for a trailing ``text()`` step); answers are identical
        to evaluating the expression over ``snapshot()``, but the plan
        only materializes what it selects.
        """
        return self.db._select(self.version, expression)

    def snapshot(self) -> Optional[Element]:
        """The fully materialized version (``None`` if it was empty)."""
        self.db._check_version(self.version)
        return self.db._retrieve(self.version)

    def __repr__(self) -> str:
        return f"VersionScope(version={self.version}, db={self.db!r})"


class RangeScope:
    """Queries against a version interval (``db.between(a, b)``)."""

    def __init__(self, db: ArchiveDB, from_version: int, to_version: int) -> None:
        self.db = db
        self.from_version = from_version
        self.to_version = to_version

    def changes(self, path_prefix: Optional[str] = None) -> QueryResult:
        """Element-level changes between the two versions.

        Streams :class:`~repro.core.tempquery.Change` records (added /
        deleted / changed, identified by key path), computed through
        the timestamp-tree-guided diff walk.  ``path_prefix`` filters
        to changes at or beneath one keyed path (whole path steps:
        ``.../sal`` does not match a sibling ``.../salx``).
        """
        self.db._check_version(self.from_version)
        self.db._check_version(self.to_version)

        def generate():
            report = self.db._diff(self.from_version, self.to_version)
            for change in report.changes:
                if path_prefix is None or _path_within(change.path, path_prefix):
                    yield change

        return QueryResult(generate(), CHANGES)

    def report(self) -> ChangeReport:
        """The eager :class:`ChangeReport` (legacy shape)."""
        self.db._check_version(self.from_version)
        self.db._check_version(self.to_version)
        return self.db._diff(self.from_version, self.to_version)

    def __repr__(self) -> str:
        return (
            f"RangeScope({self.from_version}..{self.to_version}, db={self.db!r})"
        )
