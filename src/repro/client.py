"""``repro.client`` — an :class:`ArchiveDB`-shaped facade over ``xarchd``.

::

    from repro.client import connect

    db = connect("http://localhost:8400/archives/swissprot")
    db.at(3).select("/db/dept[name='finance']/emp").all()   # Elements
    db.at("latest").select("//tel/text()").all()            # strings
    db.between(2, 5).changes().all()                        # Change records
    db.history("/db/dept[name=finance]")                    # ElementHistory
    db.ingest([document])                                   # one writer commit
    db.close()

The surface mirrors :class:`repro.query.db.ArchiveDB` — ``at(v).select``,
``between(a,b).changes``, ``history``, ``versions`` — so code written
against a local open works unchanged against a server.  Items come back
typed: ``select`` yields parsed :class:`~repro.xmltree.model.Element`
objects (or plain strings for ``text()`` queries), ``changes`` yields
:class:`~repro.core.tempquery.Change` records, and every
:class:`~repro.query.result.QueryResult` carries the server-side
:class:`~repro.query.result.QueryStats` once exhausted, plus a
``generation`` attribute naming the snapshot the server pinned for it.

Transport is one keep-alive :class:`http.client.HTTPConnection` per
:class:`RemoteDB`; the connection is **not** thread-safe — give each
thread its own ``connect()`` (they multiplex fine on the server side).
Issuing a new call silently drains any half-consumed previous stream.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPResponse
from typing import Iterable, Iterator, Optional, Union
from urllib.parse import quote, urlsplit

from .core.archive import ArchiveError, ElementHistory
from .core.tempquery import Change
from .core.versionset import VersionSet
from .query.result import CHANGES, ELEMENTS, STRINGS, QueryResult, QueryStats
from .xmltree.model import Element
from .xmltree.parser import parse_document
from .xmltree.serializer import to_string


class RemoteError(ArchiveError):
    """A structured error answered by the server.

    ``code`` is the machine-readable taxonomy entry
    (:data:`repro.server.errors.ERROR_CODES`), ``status`` the HTTP
    status it arrived under.
    """

    def __init__(self, detail: str, *, code: str, status: int) -> None:
        super().__init__(detail)
        self.code = code
        self.status = status


def connect(
    url: str, *, archive: Optional[str] = None, timeout: float = 30.0
) -> "RemoteDB":
    """Open a remote facade over one served archive.

    ``url`` is either the archive resource itself
    (``http://host:port/archives/NAME``) or a server base
    (``http://host:port``) with the name passed as ``archive=``.
    """
    split = urlsplit(url)
    if split.scheme not in ("http", ""):
        raise ArchiveError(f"Unsupported URL scheme {split.scheme!r}")
    host = split.netloc or split.path.split("/", 1)[0]
    path_parts = [part for part in split.path.split("/") if part]
    if split.netloc == "" and path_parts:
        path_parts = path_parts[1:]  # bare host:port without scheme
    if archive is None:
        if len(path_parts) == 2 and path_parts[0] == "archives":
            archive = path_parts[1]
        else:
            raise ArchiveError(
                f"{url!r} does not name an archive; use "
                f"http://host:port/archives/NAME or pass archive="
            )
    elif path_parts and path_parts != ["archives", archive]:
        raise ArchiveError(
            f"{url!r} carries a path and archive={archive!r} was also given"
        )
    return RemoteDB(host, archive, timeout=timeout)


class RemoteDB:
    """One archive on one server, spoken to over keep-alive HTTP."""

    def __init__(self, host: str, archive: str, *, timeout: float = 30.0) -> None:
        self.archive = archive
        self.host = host
        self._conn = HTTPConnection(host, timeout=timeout)
        self._active: Optional[HTTPResponse] = None
        #: Generation of the snapshot behind the most recent response.
        self.last_generation: Optional[int] = None

    # -- transport ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: Optional[str] = None,
    ) -> HTTPResponse:
        if self._active is not None:
            # Keep-alive hygiene: the previous response must be fully
            # read before the connection can carry another request.
            try:
                self._active.read()
            except Exception:
                self._conn.close()
            self._active = None
        headers = {}
        if content_type is not None:
            headers["Content-Type"] = content_type
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
        except (ConnectionError, OSError):
            if method != "GET":
                raise  # a resent ingest could double-apply; let the caller decide
            # One transparent reconnect: the server may have dropped an
            # idle keep-alive connection between calls.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
        if response.status >= 400:
            raw = response.read()
            try:
                record = json.loads(raw)["error"]
            except (ValueError, KeyError):
                raise RemoteError(
                    f"HTTP {response.status}: {raw[:200]!r}",
                    code="internal-error",
                    status=response.status,
                )
            raise RemoteError(
                record.get("detail", "server error"),
                code=record.get("code", "internal-error"),
                status=response.status,
            )
        generation = response.getheader("X-Archive-Generation")
        if generation is not None:
            self.last_generation = int(generation)
        self._active = response
        return response

    def _archive_path(self, suffix: str) -> str:
        return f"/archives/{quote(self.archive, safe='')}{suffix}"

    def _stream(
        self, response: HTTPResponse, stats: QueryStats, sink: dict
    ) -> Iterator:
        """Yield item payloads; fold the done record into ``stats``/``sink``."""
        for raw in response:
            record = json.loads(raw)
            if "item" in record:
                yield record["item"]
            elif "done" in record:
                done = record["done"]
                sink.update(done)
                for key, value in (done.get("stats") or {}).items():
                    if hasattr(stats, key):
                        setattr(stats, key, value)
                # Drain the chunked-transfer terminator so the
                # keep-alive connection is reusable immediately.
                response.read()
                self._active = None
                return
            elif "error" in record:
                error = record["error"]
                raise RemoteError(
                    error.get("detail", "server error"),
                    code=error.get("code", "internal-error"),
                    status=error.get("status", 500),
                )
        raise RemoteError(
            "Stream ended without a done record",
            code="internal-error",
            status=500,
        )

    def _ndjson_result(self, path: str) -> tuple[QueryResult, dict]:
        response = self._request("GET", path)
        kind = response.getheader("X-Result-Kind") or ELEMENTS
        generation = self.last_generation
        stats = QueryStats()
        sink: dict = {}
        items = self._stream(response, stats, sink)
        if kind == ELEMENTS:
            typed: Iterator = (
                parse_document(item) if isinstance(item, str) else item
                for item in items
            )
        elif kind == STRINGS:
            typed = items
        elif kind == CHANGES:
            typed = (
                Change(
                    kind=item["kind"],
                    path=item["path"],
                    old_content=item.get("old_content"),
                    new_content=item.get("new_content"),
                )
                for item in items
            )
        else:
            raise RemoteError(
                f"Unknown result kind {kind!r}",
                code="internal-error",
                status=500,
            )
        result = QueryResult(typed, kind, stats)
        result.generation = generation  # the snapshot this answer pinned
        result.done = sink  # the done record, filled once exhausted
        return result, sink

    def _single_record(self, path: str) -> dict:
        result, _ = self._ndjson_result(path)
        records = result.all()
        if len(records) != 1:
            raise RemoteError(
                f"Expected one record from {path}, got {len(records)}",
                code="internal-error",
                status=500,
            )
        record = records[0]
        if isinstance(record, Element):  # kind header says elements, but
            raise RemoteError(  # metadata endpoints carry dicts
                f"Unexpected element payload from {path}",
                code="internal-error",
                status=500,
            )
        return record

    # -- the ArchiveDB surface ---------------------------------------------

    def at(self, version: Union[int, str]) -> "RemoteVersionScope":
        """Scope queries to one version (an integer, or ``'latest'`` —
        resolved against the server-side snapshot pin)."""
        return RemoteVersionScope(self, version)

    def between(self, from_version: int, to_version: int) -> "RemoteRangeScope":
        return RemoteRangeScope(self, from_version, to_version)

    def history(self, path: str) -> ElementHistory:
        record = self._single_record(
            self._archive_path(f"/history?path={quote(path, safe='')}")
        )
        changes = record.get("changes")
        return ElementHistory(
            path=record["path"],
            existence=VersionSet.parse(record["existence"]),
            changes=(
                [
                    (VersionSet.parse(timestamps), content)
                    for timestamps, content in changes
                ]
                if changes is not None
                else None
            ),
        )

    def first_appearance(self, path: str) -> int:
        existence = self.history(path).existence
        if not existence:
            raise ArchiveError(f"Element at {path!r} has an empty existence")
        return existence.min_version()

    def versions(self) -> VersionSet:
        record = self._single_record(self._archive_path("/versions"))
        return VersionSet.parse(record["versions"])

    @property
    def last_version(self) -> int:
        record = self._single_record(self._archive_path("/versions"))
        return int(record["last_version"])

    def stats(self) -> dict:
        """The server-side :class:`ArchiveStats` as a plain record
        (plus ``backend``, ``codec`` and ``generation``)."""
        return self._single_record(self._archive_path("/stats"))

    def ingest(
        self, documents: Iterable[Union[Element, str]]
    ) -> dict:
        """Merge version documents (Elements or XML text) remotely.

        One request is one WAL commit on the server: the whole batch
        publishes as a single new generation, serialized against any
        other writer by the server's per-archive lock.
        """
        lines = []
        for document in documents:
            xml = document if isinstance(document, str) else to_string(document)
            lines.append(json.dumps({"xml": xml}, ensure_ascii=False))
        body = ("\n".join(lines) + "\n").encode("utf-8")
        response = self._request(
            "POST",
            self._archive_path("/ingest"),
            body=body,
            content_type="application/x-ndjson",
        )
        report = json.loads(response.read())
        self._active = None
        return report

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._conn.close()
        self._active = None

    def __enter__(self) -> "RemoteDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RemoteDB({self.host!r}, archive={self.archive!r})"


class RemoteVersionScope:
    """``db.at(v)`` against a server (mirrors ``VersionScope``)."""

    def __init__(self, db: RemoteDB, version: Union[int, str]) -> None:
        self.db = db
        self.version = version

    def select(self, expression: str) -> QueryResult:
        result, _ = self.db._ndjson_result(
            self.db._archive_path(
                f"/at/{self.version}/select?xpath={quote(expression, safe='')}"
            )
        )
        return result

    def __repr__(self) -> str:
        return f"RemoteVersionScope(version={self.version!r}, db={self.db!r})"


class RemoteRangeScope:
    """``db.between(a, b)`` against a server (mirrors ``RangeScope``)."""

    def __init__(self, db: RemoteDB, from_version: int, to_version: int) -> None:
        self.db = db
        self.from_version = from_version
        self.to_version = to_version

    def changes(self, path_prefix: Optional[str] = None) -> QueryResult:
        suffix = f"/between/{self.from_version}/{self.to_version}/changes"
        if path_prefix is not None:
            suffix += f"?prefix={quote(path_prefix, safe='')}"
        result, _ = self.db._ndjson_result(self.db._archive_path(suffix))
        return result

    def __repr__(self) -> str:
        return (
            f"RemoteRangeScope({self.from_version}..{self.to_version}, "
            f"db={self.db!r})"
        )
