"""The temporal-history key index (Sec. 7.2).

For each keyed archive node, a sorted list of its children's key labels
with two offsets per entry: one to the child's own sorted list (the
*index offset*) and one to the child's timestamp (the *timestamp
offset* — here, the resolved effective timestamp).  Retrieving the
temporal history of an element given by an ``l``-step key path costs
one binary search per step: ``O(l log d)`` for maximum degree ``d``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from ..core.archive import (
    Archive,
    ArchiveError,
    ElementHistory,
    _parse_history_path,
    missing_element_error,
)
from ..core.nodes import ArchiveNode
from ..core.versionset import VersionSet
from ..keys.annotate import KeyLabel


@dataclass
class IndexRecord:
    """One entry of a sorted child list (fixed-size record in Sec. 7.2)."""

    token: tuple  # the child's label sort token (the search key)
    label: KeyLabel
    child_list: Optional["SortedChildList"]  # the "index offset"
    timestamp: VersionSet  # the resolved "timestamp offset"


@dataclass
class SortedChildList:
    """The sorted list of one node's children records."""

    records: list[IndexRecord]

    def find(self, label: KeyLabel, comparisons: list[int]) -> Optional[IndexRecord]:
        """Binary search by label token, counting comparisons."""
        tokens = [record.token for record in self.records]
        target = label.sort_token()
        position = bisect.bisect_left(tokens, target)
        # bisect performs ceil(log2(n)) + O(1) comparisons.
        comparisons[0] += max(1, len(self.records)).bit_length()
        if position < len(self.records) and self.records[position].token == target:
            return self.records[position]
        return None


class KeyIndex:
    """Sorted child-key lists over a whole archive."""

    def __init__(self, archive: Archive) -> None:
        self.archive = archive
        self.refresh()

    def refresh(self, archive: Optional[Archive] = None) -> None:
        """Rebuild the sorted lists after the archive gained versions.

        Batched ingestion mutates (or, for the persistent chunked store,
        replaces) the archive as versions land; ``refresh`` re-anchors
        the index to the current state — optionally to a new ``archive``
        object — while callers keep holding the same index instance.
        ``history`` also refreshes automatically whenever the archive's
        mutation counter has moved since the last build, so an index
        held across ``add_version`` calls never serves the old tree.
        """
        if archive is not None:
            self.archive = archive
        root_timestamp = self.archive.root.timestamp
        if root_timestamp is None:
            raise ArchiveError("Archive root carries no timestamp")
        self._built_at = self.archive.mutation_count
        self._root_list = self._build(self.archive.root, root_timestamp)

    def _build(self, node: ArchiveNode, inherited: VersionSet) -> SortedChildList:
        records: list[IndexRecord] = []
        timestamp = node.effective_timestamp(inherited)
        for child in node.children:
            child_timestamp = child.effective_timestamp(timestamp)
            records.append(
                IndexRecord(
                    token=child.label.sort_token(),
                    label=child.label,
                    child_list=(
                        self._build(child, timestamp) if child.children else None
                    ),
                    timestamp=child_timestamp.copy(),
                )
            )
        records.sort(key=lambda record: record.token)
        return SortedChildList(records=records)

    def _ensure_fresh(self) -> None:
        """Rebuild if the archive gained versions since the last build;
        silently serving the old lists would return stale answers."""
        if self._built_at != self.archive.mutation_count:
            self.refresh()

    def record_count(self) -> int:
        """Total index records — the index's space cost."""
        self._ensure_fresh()
        count = 0
        stack = [self._root_list]
        while stack:
            child_list = stack.pop()
            count += len(child_list.records)
            for record in child_list.records:
                if record.child_list is not None:
                    stack.append(record.child_list)
        return count

    def history(self, path: str) -> tuple[VersionSet, int]:
        """Existence timestamps of the element at a keyed path.

        Returns ``(timestamps, comparisons)`` where ``comparisons``
        counts binary-search probes — the ``O(l log d)`` the paper
        claims.  Path syntax matches :meth:`Archive.history`.
        """
        self._ensure_fresh()
        steps = _parse_history_path(path)
        if not steps:
            raise ArchiveError(f"Empty history path {path!r}")
        comparisons = [0]
        current = self._root_list
        record: Optional[IndexRecord] = None
        for tag, key_value in steps:
            label = KeyLabel(tag=tag, key=key_value)
            if current is None:
                raise missing_element_error(label, path)
            record = current.find(label, comparisons)
            if record is None:
                raise missing_element_error(label, path)
            current = record.child_list
        assert record is not None
        return record.timestamp.copy(), comparisons[0]

    def element_history(self, path: str) -> ElementHistory:
        """Full :class:`ElementHistory` of the element at a keyed path.

        The index's ``O(l log d)`` binary searches settle membership
        (raising when the element is not in this archive — partitioned
        backends use that to reject non-owning parts cheaply); the
        pinned archive then renders the ``changes`` content runs, which
        the fixed-size index records do not store.
        """
        self.history(path)
        return self.archive.history(path)
