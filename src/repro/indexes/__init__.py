"""Index structures for efficient temporal queries (Sec. 7).

Timestamp binary trees accelerate version retrieval (Sec. 7.1); sorted
child-key lists accelerate temporal-history lookups (Sec. 7.2).
"""

from .bptree import BPlusKeyIndex, BPlusTree
from .keyindex import IndexRecord, KeyIndex, SortedChildList
from .timestamp_tree import (
    ProbeCount,
    TimestampTreeIndex,
    TimestampTreeNode,
    build_timestamp_tree,
    patch_timestamp_tree,
    search_timestamp_tree,
)

__all__ = [
    "BPlusKeyIndex",
    "BPlusTree",
    "IndexRecord",
    "KeyIndex",
    "ProbeCount",
    "SortedChildList",
    "TimestampTreeIndex",
    "TimestampTreeNode",
    "build_timestamp_tree",
    "patch_timestamp_tree",
    "search_timestamp_tree",
]
