"""Timestamp trees for version retrieval (Sec. 7.1) — index facade.

The tree machinery itself (build, in-place patch, threshold search)
lives in :mod:`repro.core.tstree` and the trees are owned by the
archive, which builds them lazily and patches them as versions land.
:class:`TimestampTreeIndex` is the experiment-facing facade: it pins an
archive, reproduces :meth:`repro.core.archive.Archive.retrieve` with
probe accounting, and reports the naive-scan baseline so the cost model
of Sec. 7.1 can be verified experimentally.

Because the trees are archive-resident and keyed to the archive's
mutation counter, an index instance never serves a stale tree: versions
merged after the index was built are visible to the very next
``retrieve`` without an explicit ``refresh``.
"""

from __future__ import annotations

from typing import Optional

from ..core.archive import Archive
from ..core.tstree import (  # re-exported: the public home of these names
    ProbeCount,
    TimestampTreeNode,
    build_timestamp_tree,
    patch_timestamp_tree,
    search_timestamp_tree,
    tree_size,
)
from ..xmltree.model import Element

__all__ = [
    "ProbeCount",
    "TimestampTreeIndex",
    "TimestampTreeNode",
    "build_timestamp_tree",
    "patch_timestamp_tree",
    "search_timestamp_tree",
    "tree_size",
]


class TimestampTreeIndex:
    """Probe-accounted retrieval over an archive's timestamp trees.

    ``retrieve`` returns ``(document, probes)`` where ``probes`` counts
    the tree nodes examined — the quantity the paper bounds by
    ``2α - 1 + 2α·log(k/α)``.  The trees are shared with the archive's
    own retrieval fast path and stay current automatically.
    """

    def __init__(self, archive: Archive) -> None:
        self.archive = archive
        self.refresh()

    def refresh(self, archive: Optional[Archive] = None) -> None:
        """Re-anchor to ``archive``.

        Kept for compatibility with callers that re-point the index at
        a reloaded archive object (the persistent chunked store does);
        plain staleness needs no refresh — the archive's mutation
        counter keeps the shared trees current, and the trees themselves
        stay lazy so batched ingestion never pays to keep them warm.
        """
        if archive is not None:
            self.archive = archive

    def tree_node_count(self) -> int:
        """Total tree nodes — the index's space cost.  Warms every lazy
        tree first so the count covers the whole archive."""
        return self.archive.warm_timestamp_trees()

    def retrieve(
        self, version: int, *, copy_content: bool = False
    ) -> tuple[Optional[Element], ProbeCount]:
        """Version reconstruction guided by the timestamp trees.

        Shares frontier content with the archive like
        :meth:`Archive.retrieve`; pass ``copy_content=True`` before
        mutating the returned document.
        """
        probes = ProbeCount()
        document = self.archive.retrieve(
            version, guided=True, copy_content=copy_content, probes=probes
        )
        return document, probes

    def naive_probe_count(self, version: int) -> int:
        """Probes a scan-all-children retrieval would make — the baseline
        the timestamp trees are compared against."""
        return self.archive.scan_probe_count(version)
