"""Timestamp trees for version retrieval (Sec. 7.1).

For each archive node with ``k`` children, a binary tree over the
children's timestamps directs retrieval of version ``i`` to the ``α``
children that actually contain ``i`` while probing at most
``2α - 1 + 2α·log(k/α)`` tree nodes — or at most ``2k``, at which point
the search falls back to scanning all leaves, exactly the threshold
rule of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.archive import Archive
from ..core.nodes import ArchiveNode
from ..core.versionset import VersionSet
from ..xmltree.model import Element


@dataclass
class TimestampTreeNode:
    """One node of a timestamp binary tree."""

    timestamp: VersionSet
    left: Optional["TimestampTreeNode"] = None
    right: Optional["TimestampTreeNode"] = None
    child_index: Optional[int] = None  # set on leaves: offset into children

    @property
    def is_leaf(self) -> bool:
        return self.child_index is not None


@dataclass
class ProbeCount:
    """Probe accounting for the retrieval cost analysis."""

    tree_probes: int = 0
    fallback_scans: int = 0

    def total(self) -> int:
        return self.tree_probes + self.fallback_scans


def build_timestamp_tree(
    children: list[ArchiveNode], inherited: VersionSet
) -> Optional[TimestampTreeNode]:
    """Bottom-up pairing of leaves into a binary tree (Sec. 7.1)."""
    if not children:
        return None
    level: list[TimestampTreeNode] = [
        TimestampTreeNode(
            timestamp=child.effective_timestamp(inherited).copy(), child_index=index
        )
        for index, child in enumerate(children)
    ]
    while len(level) > 1:
        paired: list[TimestampTreeNode] = []
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            paired.append(
                TimestampTreeNode(
                    timestamp=left.timestamp.union(right.timestamp),
                    left=left,
                    right=right,
                )
            )
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def search_timestamp_tree(
    tree: Optional[TimestampTreeNode],
    version: int,
    child_count: int,
    probes: Optional[ProbeCount] = None,
) -> list[int]:
    """Indexes of children relevant to ``version``.

    Descends the tree counting probes; once ``2k`` tree nodes have been
    probed the remaining work cannot beat a plain scan, so the search
    falls back to scanning all leaves (the paper's threshold rule).
    """
    if tree is None:
        return []
    probes = probes if probes is not None else ProbeCount()
    budget = 2 * child_count
    result: list[int] = []
    stack = [tree]
    while stack:
        node = stack.pop()
        probes.tree_probes += 1
        if probes.tree_probes > budget:
            # Fall back: scan every leaf once.
            result = _scan_leaves(tree, version, probes)
            return sorted(result)
        if version not in node.timestamp:
            continue
        if node.is_leaf:
            assert node.child_index is not None
            result.append(node.child_index)
        else:
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)
    return sorted(result)


def _scan_leaves(
    tree: TimestampTreeNode, version: int, probes: ProbeCount
) -> list[int]:
    result: list[int] = []
    stack = [tree]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            probes.fallback_scans += 1
            if version in node.timestamp:
                assert node.child_index is not None
                result.append(node.child_index)
            continue
        if node.right is not None:
            stack.append(node.right)
        if node.left is not None:
            stack.append(node.left)
    return result


class TimestampTreeIndex:
    """Timestamp trees for every internal node of an archive.

    ``retrieve`` reproduces :meth:`repro.core.archive.Archive.retrieve`
    but probes timestamp trees instead of checking every child, and
    reports the probe counts so the cost model of Sec. 7.1 can be
    verified experimentally.
    """

    def __init__(self, archive: Archive) -> None:
        self.archive = archive
        self._trees: dict[int, Optional[TimestampTreeNode]] = {}
        self.refresh()

    def refresh(self, archive: Optional[Archive] = None) -> None:
        """Rebuild the trees after the archive gained versions.

        Mirrors :meth:`repro.indexes.keyindex.KeyIndex.refresh`: batched
        ingestion calls this as versions land so retrieval keeps probing
        current timestamps — optionally re-anchoring to a new ``archive``
        object (the persistent chunked store reloads chunks per batch).
        """
        if archive is not None:
            self.archive = archive
        self._trees = {}
        assert self.archive.root.timestamp is not None
        self._build(self.archive.root, self.archive.root.timestamp)

    def _build(self, node: ArchiveNode, inherited: VersionSet) -> None:
        timestamp = node.effective_timestamp(inherited)
        self._trees[id(node)] = build_timestamp_tree(node.children, timestamp)
        for child in node.children:
            self._build(child, timestamp)

    def tree_node_count(self) -> int:
        """Total tree nodes — the index's space cost."""
        count = 0
        for tree in self._trees.values():
            stack = [tree] if tree else []
            while stack:
                node = stack.pop()
                count += 1
                if node.left:
                    stack.append(node.left)
                if node.right:
                    stack.append(node.right)
        return count

    def retrieve(self, version: int) -> tuple[Optional[Element], ProbeCount]:
        """Version reconstruction guided by the timestamp trees."""
        assert self.archive.root.timestamp is not None
        if version not in self.archive.root.timestamp:
            raise ValueError(f"Version {version} not in the archive")
        probes = ProbeCount()
        root_timestamp = self.archive.root.timestamp
        for index in search_timestamp_tree(
            self._trees[id(self.archive.root)],
            version,
            len(self.archive.root.children),
            probes,
        ):
            child = self.archive.root.children[index]
            element = self._reconstruct(child, version, root_timestamp, probes)
            if element is not None:
                return element, probes
        return None, probes

    def _reconstruct(
        self,
        node: ArchiveNode,
        version: int,
        inherited: VersionSet,
        probes: ProbeCount,
    ) -> Optional[Element]:
        timestamp = node.effective_timestamp(inherited)
        if version not in timestamp:
            return None
        element = Element(node.label.tag)
        for name, value in node.attributes:
            element.set_attribute(name, value)
        if node.weave is not None:
            from ..core.compaction import weave_content_at

            for content in weave_content_at(node.weave, version):
                element.append(content)
            return element
        if node.alternatives is not None:
            for alternative in node.alternatives:
                if alternative.timestamp is None or version in alternative.timestamp:
                    for content in alternative.content:
                        element.append(content.copy())
                    break
            return element
        for index in search_timestamp_tree(
            self._trees[id(node)], version, len(node.children), probes
        ):
            child = node.children[index]
            rebuilt = self._reconstruct(child, version, timestamp, probes)
            if rebuilt is not None:
                element.append(rebuilt)
        return element

    def naive_probe_count(self, version: int) -> int:
        """Probes a scan-all-children retrieval would make — the baseline
        the timestamp trees are compared against."""
        assert self.archive.root.timestamp is not None
        count = 0

        def walk(node: ArchiveNode, inherited: VersionSet) -> None:
            nonlocal count
            timestamp = node.effective_timestamp(inherited)
            count += len(node.children)
            for child in node.children:
                if version in child.effective_timestamp(timestamp):
                    walk(child, timestamp)

        count += len(self.archive.root.children)
        for child in self.archive.root.children:
            if version in child.effective_timestamp(self.archive.root.timestamp):
                walk(child, self.archive.root.timestamp)
        return count
