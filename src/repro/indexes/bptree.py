"""A B+ tree over key labels (Sec. 7.2's closing suggestion).

"If a node has a large number of children nodes, one can also consider
building more sophisticated index structures, such as a B+ tree, for
these children nodes."  This is that structure: a from-scratch,
order-``b`` B+ tree mapping label sort tokens to payloads, used by
:class:`BPlusKeyIndex` to index the children of high-degree archive
nodes (curated databases routinely have tens of thousands of records
under one parent).

Leaves are chained for range scans (``items`` / ``range_search``),
which also gives the index a cheap way to enumerate a node's children
in key order — the order Nested Merge maintains.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..core.archive import Archive, ArchiveError, _parse_history_path
from ..core.nodes import ArchiveNode
from ..core.versionset import VersionSet
from ..keys.annotate import KeyLabel


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list = []


class _Leaf(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self) -> None:
        super().__init__()
        self.values: list = []
        self.next_leaf: Optional["_Leaf"] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []


@dataclass
class BPlusTree:
    """An order-``branching`` B+ tree with measured search cost."""

    branching: int = 32
    _root: _Node = field(default_factory=_Leaf, repr=False)
    _size: int = 0

    def __post_init__(self) -> None:
        if self.branching < 3:
            raise ValueError("B+ tree branching factor must be >= 3")

    def __len__(self) -> int:
        return self._size

    # -- insertion ---------------------------------------------------------

    def insert(self, key, value) -> None:
        """Insert or replace the payload for ``key``."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key, value):
        if isinstance(node, _Leaf):
            position = bisect.bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position] = value
                return None
            node.keys.insert(position, key)
            node.values.insert(position, value)
            self._size += 1
            if len(node.keys) < self.branching:
                return None
            return self._split_leaf(node)
        assert isinstance(node, _Internal)
        slot = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[slot], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right)
        if len(node.children) <= self.branching:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # -- search --------------------------------------------------------------

    def search(self, key, probes: Optional[list[int]] = None):
        """Payload for ``key``, or ``None``; counts node probes."""
        node = self._root
        while isinstance(node, _Internal):
            if probes is not None:
                probes[0] += 1
            slot = bisect.bisect_right(node.keys, key)
            node = node.children[slot]
        if probes is not None:
            probes[0] += 1
        position = bisect.bisect_left(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            return node.values[position]
        return None

    def height(self) -> int:
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    # -- ordered scans ----------------------------------------------------------

    def _first_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order (leaf chain scan)."""
        leaf: Optional[_Leaf] = self._first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def range_search(self, low, high) -> Iterator[tuple[Any, Any]]:
        """Entries with ``low <= key <= high``, in key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect.bisect_right(node.keys, low)]
        assert isinstance(node, _Leaf)
        leaf: Optional[_Leaf] = node
        started = False
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                if key < low:
                    continue
                if key > high:
                    return
                started = True
                yield key, value
            if started or leaf.keys and leaf.keys[-1] >= low:
                pass
            leaf = leaf.next_leaf


@dataclass
class _IndexedChild:
    timestamp: VersionSet
    subtree: Optional[BPlusTree]  # None for frontier children


class BPlusKeyIndex:
    """Temporal-history index backed by per-node B+ trees.

    Functionally equivalent to :class:`repro.indexes.keyindex.KeyIndex`
    but with B+ trees instead of flat sorted lists — the structure
    Sec. 7.2 recommends for very high degrees.
    """

    def __init__(self, archive: Archive, branching: int = 32) -> None:
        self.archive = archive
        self.branching = branching
        assert archive.root.timestamp is not None
        self._root_tree = self._build(archive.root, archive.root.timestamp)

    def _build(self, node: ArchiveNode, inherited: VersionSet) -> BPlusTree:
        tree = BPlusTree(branching=self.branching)
        timestamp = node.effective_timestamp(inherited)
        for child in node.children:
            child_timestamp = child.effective_timestamp(timestamp)
            tree.insert(
                child.label.sort_token(),
                _IndexedChild(
                    timestamp=child_timestamp.copy(),
                    subtree=(
                        self._build(child, timestamp) if child.children else None
                    ),
                ),
            )
        return tree

    def history(self, path: str) -> tuple[VersionSet, int]:
        """``(timestamps, node probes)`` for the element at ``path``."""
        steps = _parse_history_path(path)
        if not steps:
            raise ArchiveError(f"Empty history path {path!r}")
        probes = [0]
        tree: Optional[BPlusTree] = self._root_tree
        entry: Optional[_IndexedChild] = None
        for tag, key_value in steps:
            if tree is None:
                raise ArchiveError(f"No children beneath {path!r}")
            entry = tree.search(KeyLabel(tag=tag, key=key_value).sort_token(), probes)
            if entry is None:
                raise ArchiveError(f"Element {tag}{dict(key_value)} not in archive")
            tree = entry.subtree
        assert entry is not None
        return entry.timestamp.copy(), probes[0]
