"""``xarch`` — a command-line front end to the archiver.

A downstream curator's workflow over plain files::

    xarch init  archive.xml --keys keys.txt        # empty archive
    xarch add   archive.xml version1.xml           # merge a version
    xarch ingest archive.xml snapshots/ --keys keys.txt   # batch a directory
    xarch get   archive.xml 3 -o v3.xml            # retrieve version 3
    xarch log   archive.xml '/db/dept[name=finance]/emp[fn=John, ln=Doe]'
    xarch diff  archive.xml 2 5                    # semantic change report
    xarch stats archive.xml                        # size/shape counters
    xarch mine  v1.xml v2.xml -o keys.txt          # infer a key spec

The archive file is the ``<T>``-tagged XML of the paper's Fig. 5; the
keys file uses the textual syntax of the paper's Appendix B.  The key
spec is stored alongside the archive (``<archive>.keys``) by ``init``
so later commands need no ``--keys`` flag.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core.archive import Archive, ArchiveOptions
from .core.ingest import IngestSession
from .core.tempquery import archive_diff
from .core.tstree import ProbeCount
from .keys.keyparser import parse_key_spec
from .keys.mining import mine_keys
from .keys.spec import KeySpec
from .xmltree.parser import parse_file
from .xmltree.serializer import to_pretty_string


def _keys_path(archive_path: str) -> str:
    return archive_path + ".keys"


def _load_spec(archive_path: str, keys_file: str | None) -> KeySpec:
    path = keys_file or _keys_path(archive_path)
    if not os.path.exists(path):
        raise SystemExit(
            f"xarch: key specification {path!r} not found "
            f"(run 'xarch init' or pass --keys)"
        )
    with open(path, "r", encoding="utf-8") as handle:
        return parse_key_spec(handle.read())


def _load_archive(args: argparse.Namespace) -> tuple[Archive, KeySpec]:
    spec = _load_spec(args.archive, getattr(args, "keys", None))
    options = ArchiveOptions(compaction=getattr(args, "compaction", False))
    with open(args.archive, "r", encoding="utf-8") as handle:
        return Archive.from_xml_string(handle.read(), spec, options), spec


def _store_archive(args: argparse.Namespace, archive: Archive) -> None:
    with open(args.archive, "w", encoding="utf-8") as handle:
        handle.write(archive.to_xml_string())


def cmd_init(args: argparse.Namespace) -> int:
    with open(args.keys, "r", encoding="utf-8") as handle:
        keys_text = handle.read()
    parse_key_spec(keys_text)  # validate before writing anything
    if os.path.exists(args.archive) and not args.force:
        raise SystemExit(f"xarch: {args.archive!r} exists (use --force)")
    archive = Archive(parse_key_spec(keys_text))
    _store_archive(args, archive)
    with open(_keys_path(args.archive), "w", encoding="utf-8") as handle:
        handle.write(keys_text)
    print(f"initialized empty archive {args.archive}")
    return 0


def cmd_add(args: argparse.Namespace) -> int:
    archive, _ = _load_archive(args)
    for version_path in args.versions:
        document = parse_file(version_path)
        stats = archive.add_version(document)
        print(
            f"merged {version_path} as version {archive.last_version} "
            f"(matched {stats.nodes_matched}, inserted {stats.nodes_inserted}, "
            f"content changes {stats.frontier_content_changes})"
        )
    _store_archive(args, archive)
    return 0


def _collect_version_files(sources: list[str]) -> list[str]:
    """Expand the ``ingest`` operands: directories contribute their
    ``.xml`` files in sorted (snapshot) order, files pass through."""
    files: list[str] = []
    for source in sources:
        if os.path.isdir(source):
            entries = sorted(
                entry for entry in os.listdir(source) if entry.endswith(".xml")
            )
            if not entries:
                raise SystemExit(f"xarch: no .xml version files in {source!r}")
            files.extend(os.path.join(source, entry) for entry in entries)
        else:
            files.append(source)
    if not files:
        raise SystemExit("xarch: nothing to ingest")
    return files


def cmd_ingest(args: argparse.Namespace) -> int:
    """Batch-merge a directory (or list) of version files end-to-end."""
    files = _collect_version_files(args.sources)
    if os.path.exists(args.archive):
        archive, _ = _load_archive(args)
    else:
        # End-to-end bootstrap: create the archive like ``init`` would.
        if not args.keys:
            raise SystemExit(
                f"xarch: {args.archive!r} does not exist; pass --keys to create it"
            )
        with open(args.keys, "r", encoding="utf-8") as handle:
            keys_text = handle.read()
        spec = parse_key_spec(keys_text)
        archive = Archive(spec, ArchiveOptions(compaction=args.compaction))
        with open(_keys_path(args.archive), "w", encoding="utf-8") as handle:
            handle.write(keys_text)
    session = IngestSession(archive)
    for version_path in files:
        stats = session.add(parse_file(version_path))
        print(
            f"merged {version_path} as version {archive.last_version} "
            f"(visited {stats.nodes_visited()}, skipped {stats.subtrees_skipped} "
            f"subtrees / {stats.nodes_skipped} nodes)"
        )
    _store_archive(args, archive)
    total = session.stats
    print(
        f"ingested {total.versions} versions: {total.nodes_visited()} node visits, "
        f"{total.nodes_inserted} inserted, {total.subtrees_skipped} subtrees "
        f"skipped ({total.nodes_skipped} nodes), "
        f"{total.frontier_skips} frontier digest hits"
    )
    return 0


def cmd_get(args: argparse.Namespace) -> int:
    archive, _ = _load_archive(args)
    probes = ProbeCount() if args.probes else None
    document = archive.retrieve(args.version, probes=probes)
    if probes is not None:
        naive = archive.scan_probe_count(args.version)
        print(
            f"probed {probes.total()} timestamp-tree nodes "
            f"({probes.tree_probes} tree, {probes.fallback_scans} fallback); "
            f"a full scan checks {naive}",
            file=sys.stderr,
        )
    if document is None:
        print(f"version {args.version} is an empty database", file=sys.stderr)
        return 1
    text = to_pretty_string(document, indent="  " if args.indent else "")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote version {args.version} to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_log(args: argparse.Namespace) -> int:
    archive, _ = _load_archive(args)
    history = archive.history(args.path)
    print(f"{args.path}")
    print(f"  exists at versions: {history.existence.to_text()}")
    if history.changes:
        for timestamps, content in history.changes:
            preview = content if len(content) <= 60 else content[:57] + "..."
            print(f"  versions {timestamps.to_text()}: {preview}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    archive, _ = _load_archive(args)
    report = archive_diff(archive, args.from_version, args.to_version)
    print(report)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    archive, _ = _load_archive(args)
    stats = archive.stats()
    print(f"versions:           {stats.versions}")
    print(f"archive nodes:      {stats.nodes}")
    print(f"stored timestamps:  {stats.stored_timestamps}")
    print(f"serialized bytes:   {stats.serialized_bytes}")
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    versions = [parse_file(path) for path in args.versions]
    report = mine_keys(versions)
    text = str(report.spec) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(report.spec)} keys to {args.output}")
    else:
        print(text, end="")
    for note in report.notes:
        print(f"note: {note}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xarch",
        description="Key-based XML archiver (Buneman et al., SIGMOD 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="create an empty archive")
    p_init.add_argument("archive")
    p_init.add_argument("--keys", required=True, help="key specification file")
    p_init.add_argument("--force", action="store_true")
    p_init.set_defaults(func=cmd_init)

    p_add = sub.add_parser("add", help="merge version file(s) into the archive")
    p_add.add_argument("archive")
    p_add.add_argument("versions", nargs="+")
    p_add.add_argument("--keys")
    p_add.set_defaults(func=cmd_add)

    p_ingest = sub.add_parser(
        "ingest",
        help="batch-merge a directory (or list) of version files",
    )
    p_ingest.add_argument("archive")
    p_ingest.add_argument(
        "sources",
        nargs="+",
        help="version .xml files, or directories of them (sorted order)",
    )
    p_ingest.add_argument("--keys", help="key spec (required to create the archive)")
    p_ingest.add_argument(
        "--compaction",
        action="store_true",
        help="store frontier content as SCCS weaves (further compaction)",
    )
    p_ingest.set_defaults(func=cmd_ingest)

    p_get = sub.add_parser("get", help="retrieve a past version")
    p_get.add_argument("archive")
    p_get.add_argument("version", type=int)
    p_get.add_argument("-o", "--output")
    p_get.add_argument("--indent", action="store_true")
    p_get.add_argument(
        "--probes",
        action="store_true",
        help="report timestamp-tree probe counts vs the full-scan baseline",
    )
    p_get.add_argument("--keys")
    p_get.set_defaults(func=cmd_get)

    p_log = sub.add_parser("log", help="temporal history of a keyed element")
    p_log.add_argument("archive")
    p_log.add_argument("path")
    p_log.add_argument("--keys")
    p_log.set_defaults(func=cmd_log)

    p_diff = sub.add_parser("diff", help="semantic changes between versions")
    p_diff.add_argument("archive")
    p_diff.add_argument("from_version", type=int)
    p_diff.add_argument("to_version", type=int)
    p_diff.add_argument("--keys")
    p_diff.set_defaults(func=cmd_diff)

    p_stats = sub.add_parser("stats", help="archive size and shape")
    p_stats.add_argument("archive")
    p_stats.add_argument("--keys")
    p_stats.set_defaults(func=cmd_stats)

    p_mine = sub.add_parser("mine", help="infer a key spec from versions")
    p_mine.add_argument("versions", nargs="+")
    p_mine.add_argument("-o", "--output")
    p_mine.set_defaults(func=cmd_mine)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as error:
        print(f"xarch: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
