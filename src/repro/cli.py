"""``xarch`` — a command-line front end to the archiver.

A downstream curator's workflow over plain files::

    xarch init  archive.xml --keys keys.txt        # empty archive
    xarch init  store/ --keys keys.txt --backend chunked   # key-hash chunks
    xarch init  archive.xml --keys keys.txt --codec xmill  # compressed at rest
    xarch add   archive.xml version1.xml           # merge a version
    xarch ingest archive.xml snapshots/ --keys keys.txt   # batch a directory
    xarch get   archive.xml 3 -o v3.xml            # retrieve version 3
    xarch query archive.xml "//emp[fn='John']" --at 3   # planned XPath
    xarch query archive.xml /db --between 2 5      # change stream
    xarch log   archive.xml '/db/dept[name=finance]/emp[fn=John, ln=Doe]'
    xarch diff  archive.xml 2 5                    # semantic change report
    xarch stats archive.xml                        # size/shape/codec counters
    xarch recode archive.xml --codec gzip          # re-encode in place
    xarch fsck  archive.xml --repair               # scrub / repair integrity
    xarch mine  v1.xml v2.xml -o keys.txt          # infer a key spec

Every subcommand dispatches through
:func:`repro.storage.open_archive`, so the same commands work
identically on all storage backends — the whole-file archive (the
``<T>``-tagged XML of the paper's Fig. 5), the key-hash chunked store
(Sec. 5) and the external event-stream archive (Sec. 6).  The backend
is chosen at ``init``/first-``ingest`` time and auto-detected from the
archive's manifest afterwards.  The keys file uses the textual syntax
of the paper's Appendix B and is stored alongside the archive by
``init`` so later commands need no ``--keys`` flag.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .compress.xmill import XMillFormatError
from .core.archive import ArchiveError, ArchiveOptions
from .core.tstree import ProbeCount
from .keys.keyparser import parse_key_spec
from .keys.mining import mine_keys
from .keys.spec import KeySpec
from .storage.backend import (
    BACKEND_KINDS,
    StorageBackend,
    create_archive,
    keys_location,
    open_archive,
)
from .storage.codec import CODEC_NAMES, CodecError, get_codec
from .storage.integrity import IntegrityError
from .storage.wal import WalError
from .xmltree.parser import parse_file
from .xmltree.serializer import to_pretty_string

#: Exit code for detected corruption (vs 1 for ordinary usage errors).
EXIT_CORRUPT = 2


def _read_keys_text(archive_path: str, keys_file: str | None) -> str:
    path = keys_file or keys_location(archive_path)
    if not os.path.exists(path):
        raise SystemExit(
            f"xarch: key specification {path!r} not found "
            f"(run 'xarch init' or pass --keys)"
        )
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_spec(archive_path: str, keys_file: str | None) -> KeySpec:
    return parse_key_spec(_read_keys_text(archive_path, keys_file))


def _open(args: argparse.Namespace) -> StorageBackend:
    spec = _load_spec(args.archive, getattr(args, "keys", None))
    options = ArchiveOptions(compaction=getattr(args, "compaction", False))
    return open_archive(
        args.archive,
        spec,
        options=options,
        workers=getattr(args, "workers", 1),
    )


def cmd_init(args: argparse.Namespace) -> int:
    with open(args.keys, "r", encoding="utf-8") as handle:
        keys_text = handle.read()
    try:
        backend = create_archive(
            args.archive,
            keys_text,
            kind=args.backend,
            chunk_count=args.chunks,
            force=args.force,
            codec=args.codec,
        )
    except ArchiveError as error:
        raise SystemExit(f"xarch: {error}")
    backend.close()
    print(
        f"initialized empty {args.backend} archive {args.archive}"
        + (f" (codec {args.codec})" if args.codec else "")
    )
    return 0


def cmd_add(args: argparse.Namespace) -> int:
    backend = _open(args)
    base = backend.last_version
    per_version: dict[int, object] = {}
    backend.ingest_batch(
        (parse_file(path) for path in args.versions),
        on_version=lambda number, stats: per_version.__setitem__(number, stats),
    )
    for offset, version_path in enumerate(args.versions, start=1):
        number = base + offset
        stats = per_version.get(number)
        if stats is not None:
            print(
                f"merged {version_path} as version {number} "
                f"(matched {stats.nodes_matched}, "
                f"inserted {stats.nodes_inserted}, "
                f"content changes {stats.frontier_content_changes})"
            )
        else:
            print(f"merged {version_path} as version {number}")
    backend.close()
    return 0


def _collect_version_files(sources: list[str]) -> list[str]:
    """Expand the ``ingest`` operands: directories contribute their
    ``.xml`` files in sorted (snapshot) order, files pass through."""
    files: list[str] = []
    for source in sources:
        if os.path.isdir(source):
            entries = sorted(
                entry for entry in os.listdir(source) if entry.endswith(".xml")
            )
            if not entries:
                raise SystemExit(f"xarch: no .xml version files in {source!r}")
            files.extend(os.path.join(source, entry) for entry in entries)
        else:
            files.append(source)
    if not files:
        raise SystemExit("xarch: nothing to ingest")
    return files


def cmd_ingest(args: argparse.Namespace) -> int:
    """Batch-merge a directory (or list) of version files end-to-end."""
    files = _collect_version_files(args.sources)
    if getattr(args, "remote", None):
        from .client import connect

        with connect(args.remote, archive=args.archive) as db:
            report = db.ingest(parse_file(path) for path in files)
        merge = report["merge"]
        print(
            f"ingested {report['ingested']} versions into {args.archive} "
            f"on {args.remote} (versions {report['base_version'] + 1}.."
            f"{report['last_version']}, generation {report['generation']}): "
            f"{merge['nodes_inserted']} inserted, "
            f"{merge['subtrees_skipped']} subtrees skipped"
        )
        return 0
    if os.path.exists(args.archive):
        backend = _open(args)
        if args.codec is not None and args.codec != backend.codec.name:
            # Refuse rather than silently ingest into the existing
            # encoding: the user asked for bytes at rest they would
            # not get.
            raise SystemExit(
                f"xarch: {args.archive!r} already stores codec "
                f"{backend.codec.name!r}; run 'xarch recode {args.archive} "
                f"--codec {args.codec}' to change it"
            )
    else:
        # End-to-end bootstrap: create the archive like ``init`` would.
        if not args.keys:
            raise SystemExit(
                f"xarch: {args.archive!r} does not exist; pass --keys to create it"
            )
        with open(args.keys, "r", encoding="utf-8") as handle:
            keys_text = handle.read()
        backend = create_archive(
            args.archive,
            keys_text,
            kind=args.backend,
            chunk_count=args.chunks,
            options=ArchiveOptions(compaction=args.compaction),
            codec=args.codec,
            workers=args.workers,
        )
    base = backend.last_version
    per_version: dict[int, object] = {}
    total = backend.ingest_batch(
        (parse_file(path) for path in files),
        on_version=lambda number, stats: per_version.__setitem__(number, stats),
    )
    for offset, version_path in enumerate(files, start=1):
        number = base + offset
        stats = per_version.get(number)
        if stats is not None:
            print(
                f"merged {version_path} as version {number} "
                f"(visited {stats.nodes_visited()}, "
                f"skipped {stats.subtrees_skipped} subtrees "
                f"/ {stats.nodes_skipped} nodes)"
            )
        else:
            print(f"merged {version_path} as version {number}")
    print(
        f"ingested {total.versions} versions: {total.nodes_visited()} node visits, "
        f"{total.nodes_inserted} inserted, {total.subtrees_skipped} subtrees "
        f"skipped ({total.nodes_skipped} nodes), "
        f"{total.frontier_skips} frontier digest hits"
    )
    backend.close()
    return 0


def cmd_get(args: argparse.Namespace) -> int:
    backend = _open(args)
    probes = ProbeCount() if args.probes and backend.supports_probes else None
    document = backend.retrieve(args.version, probes=probes)
    if args.probes:
        if probes is None:
            print(
                f"the {backend.kind} backend does not track retrieval probes",
                file=sys.stderr,
            )
        else:
            naive = backend.scan_probe_count(args.version)
            print(
                f"probed {probes.total()} timestamp-tree nodes "
                f"({probes.tree_probes} tree, {probes.fallback_scans} fallback); "
                f"a full scan checks {naive}",
                file=sys.stderr,
            )
    if document is None:
        print(f"version {args.version} is an empty database", file=sys.stderr)
        return 1
    text = to_pretty_string(document, indent="  " if args.indent else "")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote version {args.version} to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Planned temporal XPath through the :class:`ArchiveDB` facade."""
    from .xmltree.serializer import to_string

    if getattr(args, "remote", None):
        return _cmd_query_remote(args)
    backend = _open(args)
    db = backend.db()
    if args.explain:
        print("\n".join(db.explain(args.xpath)))
        return 0
    if args.between is not None:
        from_version, to_version = args.between
        prefix = None if args.xpath in ("/", "") else args.xpath
        count = 0
        for change in db.between(from_version, to_version).changes(prefix):
            print(change)
            count += 1
        if count == 0:
            print(
                f"no changes between versions {from_version} and {to_version}"
                + (f" under {prefix}" if prefix else ""),
                file=sys.stderr,
            )
        if args.stats:
            print(
                f"{count} change(s) between versions {from_version} and "
                f"{to_version} (timestamp-tree-guided diff walk)",
                file=sys.stderr,
            )
        return 0
    version = args.at if args.at is not None else backend.last_version
    result = db.at(version).select(args.xpath)
    count = 0
    for item in result:
        print(item if isinstance(item, str) else to_string(item))
        count += 1
    if args.stats:
        stats = result.stats
        how = (
            f"snapshot fallback ({stats.fallback_reason})"
            if stats.fallback
            else "planned over the archive tree"
        )
        print(
            f"{count} result(s) at version {version}: {how}; "
            f"visited {stats.nodes_visited()} nodes "
            f"({stats.archive_nodes_visited} archive, {stats.tree_probes} "
            f"tree probes, {stats.nodes_materialized} materialized, "
            f"{stats.events_skipped} stream events drained), "
            f"{stats.index_lookups} index lookups, "
            f"{stats.chunks_pruned} chunks pruned, "
            f"{stats.chunks_routed_past} routed past"
            + (
                f", {stats.parallel_chunks} chunk plan(s) across "
                f"{stats.workers_used} workers"
                if stats.parallel_chunks
                else ""
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_query_remote(args: argparse.Namespace) -> int:
    """The ``query --remote URL`` path: same output, answered by xarchd.

    ``args.archive`` is the archive's *name on the server*, not a local
    path; the generation the server pinned for the answer reports with
    ``--stats``.
    """
    from .client import connect
    from .xmltree.serializer import to_string

    if args.explain:
        raise SystemExit(
            "xarch: --explain needs the local planner; drop --remote"
        )
    with connect(args.remote, archive=args.archive) as db:
        if args.between is not None:
            from_version, to_version = args.between
            prefix = None if args.xpath in ("/", "") else args.xpath
            count = 0
            for change in db.between(from_version, to_version).changes(prefix):
                print(change)
                count += 1
            if count == 0:
                print(
                    f"no changes between versions {from_version} and "
                    f"{to_version}" + (f" under {prefix}" if prefix else ""),
                    file=sys.stderr,
                )
            if args.stats:
                print(
                    f"{count} change(s) between versions {from_version} and "
                    f"{to_version} (served at generation "
                    f"{db.last_generation})",
                    file=sys.stderr,
                )
            return 0
        version = args.at if args.at is not None else "latest"
        result = db.at(version).select(args.xpath)
        count = 0
        for item in result:
            print(item if isinstance(item, str) else to_string(item))
            count += 1
        if args.stats:
            stats = result.stats
            how = (
                f"snapshot fallback ({stats.fallback_reason})"
                if stats.fallback
                else "planned over the archive tree"
            )
            print(
                f"{count} result(s) at version {version} "
                f"(server generation {result.generation}): {how}; "
                f"visited {stats.nodes_visited()} nodes on the server",
                file=sys.stderr,
            )
    return 0


def cmd_log(args: argparse.Namespace) -> int:
    backend = _open(args)
    history = backend.history(args.path)
    print(f"{args.path}")
    print(f"  exists at versions: {history.existence.to_text()}")
    if history.changes:
        for timestamps, content in history.changes:
            preview = content if len(content) <= 60 else content[:57] + "..."
            print(f"  versions {timestamps.to_text()}: {preview}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    backend = _open(args)
    report = backend.diff(args.from_version, args.to_version)
    print(report)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    backend = _open(args)
    stats = backend.stats()
    print(f"backend:            {backend.kind}")
    print(f"codec:              {backend.codec.name}")
    print(f"generation:         {stats.generation}")
    print(f"versions:           {stats.versions}")
    print(f"archive nodes:      {stats.nodes}")
    print(f"stored timestamps:  {stats.stored_timestamps}")
    print(f"serialized bytes:   {stats.serialized_bytes}")
    print(f"raw bytes:          {stats.raw_bytes}")
    print(f"disk bytes:         {stats.disk_bytes}")
    print(f"compression ratio:  {stats.compression_ratio:.2f}x")
    return 0


def cmd_recode(args: argparse.Namespace) -> int:
    """Rewrite an archive in place under another at-rest codec."""
    backend = _open(args)
    try:
        report = backend.recode(args.codec)
    except ArchiveError as error:
        raise SystemExit(f"xarch: {error}")
    finally:
        backend.close()
    print(report)
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Scrub (and optionally repair) an archive's on-disk state."""
    from .storage.fsck import fsck_archive

    report = fsck_archive(
        args.archive,
        keys_file=args.keys,
        repair=args.repair,
        deep=args.deep,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report)
    if report.clean or (args.repair and not report.unrepaired):
        return 0
    return 1


def cmd_mine(args: argparse.Namespace) -> int:
    versions = [parse_file(path) for path in args.versions]
    report = mine_keys(versions)
    text = str(report.spec) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(report.spec)} keys to {args.output}")
    else:
        print(text, end="")
    for note in report.notes:
        print(f"note: {note}", file=sys.stderr)
    return 0


def _codec_arg(name: str) -> str:
    """Validate a ``--codec`` operand through the codec registry.

    Every surface that takes a codec name — ``init``, ``ingest``,
    ``recode``, the library's ``get_codec`` — rejects an unknown name
    with the same registry message; argparse type errors already exit
    with the corruption/usage status 2, matching ``EXIT_CORRUPT``.
    """
    try:
        get_codec(name)
    except CodecError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    return name


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKEND_KINDS,
        default="file",
        help="storage backend for a newly created archive "
        "(existing archives auto-detect from their manifest)",
    )
    parser.add_argument(
        "--chunks",
        type=int,
        default=8,
        help="chunk count for the chunked backend",
    )
    parser.add_argument(
        "--codec",
        type=_codec_arg,
        metavar="{" + ",".join(CODEC_NAMES) + "}",
        default=None,
        help="at-rest compression codec for a newly created archive "
        "(default raw; existing archives keep their codec — use "
        "'xarch recode' to change it)",
    )


def _add_remote_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--remote",
        metavar="URL",
        help="run against an xarchd server (http://host:port); the "
        "archive operand is then the archive's name on the server, "
        "not a local path",
    )


def _add_workers_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool width for per-chunk work on the chunked "
        "backend (default 1 = serial; output is byte-identical "
        "either way)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xarch",
        description="Key-based XML archiver (Buneman et al., SIGMOD 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="create an empty archive")
    p_init.add_argument("archive")
    p_init.add_argument("--keys", required=True, help="key specification file")
    p_init.add_argument("--force", action="store_true")
    _add_backend_options(p_init)
    p_init.set_defaults(func=cmd_init)

    p_add = sub.add_parser("add", help="merge version file(s) into the archive")
    p_add.add_argument("archive")
    p_add.add_argument("versions", nargs="+")
    p_add.add_argument("--keys")
    p_add.set_defaults(func=cmd_add)

    p_ingest = sub.add_parser(
        "ingest",
        help="batch-merge a directory (or list) of version files",
    )
    p_ingest.add_argument("archive")
    p_ingest.add_argument(
        "sources",
        nargs="+",
        help="version .xml files, or directories of them (sorted order)",
    )
    p_ingest.add_argument("--keys", help="key spec (required to create the archive)")
    p_ingest.add_argument(
        "--compaction",
        action="store_true",
        help="store frontier content as SCCS weaves (further compaction)",
    )
    _add_backend_options(p_ingest)
    _add_workers_option(p_ingest)
    _add_remote_option(p_ingest)
    p_ingest.set_defaults(func=cmd_ingest)

    p_get = sub.add_parser("get", help="retrieve a past version")
    p_get.add_argument("archive")
    p_get.add_argument("version", type=int)
    p_get.add_argument("-o", "--output")
    p_get.add_argument("--indent", action="store_true")
    p_get.add_argument(
        "--probes",
        action="store_true",
        help="report timestamp-tree probe counts vs the full-scan baseline",
    )
    p_get.add_argument("--keys")
    p_get.set_defaults(func=cmd_get)

    p_query = sub.add_parser(
        "query",
        help="temporal XPath over the archive (planned, index-aware)",
    )
    p_query.add_argument("archive")
    p_query.add_argument(
        "xpath",
        help="XPath expression; with --between, a key-path prefix "
        "filtering the change stream ('/' for all changes)",
    )
    scope = p_query.add_mutually_exclusive_group()
    scope.add_argument(
        "--at",
        type=int,
        metavar="V",
        help="version to query (default: the latest)",
    )
    scope.add_argument(
        "--between",
        nargs=2,
        type=int,
        metavar=("FROM", "TO"),
        help="stream element-level changes between two versions",
    )
    p_query.add_argument(
        "--explain",
        action="store_true",
        help="print the compiled plan instead of running it",
    )
    p_query.add_argument(
        "--stats",
        action="store_true",
        help="report planner/pushdown work accounting on stderr",
    )
    p_query.add_argument("--keys")
    _add_workers_option(p_query)
    _add_remote_option(p_query)
    p_query.set_defaults(func=cmd_query)

    p_log = sub.add_parser("log", help="temporal history of a keyed element")
    p_log.add_argument("archive")
    p_log.add_argument("path")
    p_log.add_argument("--keys")
    p_log.set_defaults(func=cmd_log)

    p_diff = sub.add_parser("diff", help="semantic changes between versions")
    p_diff.add_argument("archive")
    p_diff.add_argument("from_version", type=int)
    p_diff.add_argument("to_version", type=int)
    p_diff.add_argument("--keys")
    p_diff.set_defaults(func=cmd_diff)

    p_stats = sub.add_parser("stats", help="archive size and shape")
    p_stats.add_argument("archive")
    p_stats.add_argument("--keys")
    p_stats.set_defaults(func=cmd_stats)

    p_recode = sub.add_parser(
        "recode",
        help="rewrite the archive in place under another at-rest codec",
    )
    p_recode.add_argument("archive")
    p_recode.add_argument(
        "--codec",
        type=_codec_arg,
        metavar="{" + ",".join(CODEC_NAMES) + "}",
        required=True,
        help="target codec (atomic, identity-verified rewrite)",
    )
    p_recode.add_argument("--keys")
    _add_workers_option(p_recode)
    p_recode.set_defaults(func=cmd_recode)

    p_fsck = sub.add_parser(
        "fsck",
        help="scrub manifest, checksums, WAL state and sidecars; "
        "--repair rebuilds what is derivable and quarantines the rest",
    )
    p_fsck.add_argument("archive")
    p_fsck.add_argument(
        "--repair",
        action="store_true",
        help="rebuild derivable state (presence sidecars, checksums, "
        "manifest); quarantine — never delete — undecodable payloads",
    )
    p_fsck.add_argument(
        "--deep",
        action="store_true",
        help="also decode and parse every payload (catches corruption "
        "that preserves the recorded checksum)",
    )
    p_fsck.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings report",
    )
    p_fsck.add_argument("--keys")
    p_fsck.set_defaults(func=cmd_fsck)

    p_mine = sub.add_parser("mine", help="infer a key spec from versions")
    p_mine.add_argument("versions", nargs="+")
    p_mine.add_argument("-o", "--output")
    p_mine.set_defaults(func=cmd_mine)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (
        IntegrityError,
        WalError,
        CodecError,
        XMillFormatError,
        json.JSONDecodeError,
    ) as error:
        # Detected corruption: one-line diagnostic, distinct exit code,
        # and a pointer at the scrubber.  Ordered before the generic
        # handler — every one of these is also a ValueError.
        archive = getattr(args, "archive", None)
        hint = f"; run 'xarch fsck {archive}'" if archive else ""
        print(
            f"xarch: corruption detected: {error}{hint}",
            file=sys.stderr,
        )
        return EXIT_CORRUPT
    except (ValueError, OSError) as error:
        print(f"xarch: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
